/**
 * @file
 * EvalSpec: one declarative description of "how should <H_c> be
 * evaluated" — backend family (or Auto), QAOA depth, noise model,
 * trajectory/shot budget, and the statevector qubit cutoff. Every
 * caller that used to hand-construct an evaluator (pipeline stages,
 * landscapes, layerwise drivers, examples, bench figures) now states a
 * spec and lets the backend registry resolve it, so the selection
 * policy lives in exactly one place: resolveBackend().
 */

#ifndef REDQAOA_ENGINE_EVAL_SPEC_HPP
#define REDQAOA_ENGINE_EVAL_SPEC_HPP

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "quantum/batched_kernels.hpp"
#include "quantum/noise.hpp"

namespace redqaoa {

/** Concrete evaluator families the backend registry can construct. */
enum class EvalBackend
{
    Auto,        //!< Resolve per (graph, spec); see resolveBackend().
    Statevector, //!< Exact 2^n simulation (ExactEvaluator).
    /**
     * Exact 2^n simulation advancing kBatchLanes statevectors per
     * table pass (BatchedExactEvaluator over BatchedStateSet).
     * Byte-identical to Statevector at every thread count — the
     * point-aware resolveBackend overload prefers it for multi-point
     * jobs, and pinning it is always safe.
     */
    StatevectorBatched,
    AnalyticP1,  //!< Closed-form p=1 (AnalyticEvaluator).
    Lightcone,   //!< Per-edge cones (LightconeCutEvaluator).
    Trajectory,  //!< Pauli-trajectory noise (NoisyEvaluator).
};

/**
 * Deterministic points on one graph at or above which multi-point
 * surfaces (EvalEngine::drain, ExactEvaluator::batchExpectation)
 * prefer the batched statevector path: below one full lane group the
 * padded lanes would do more arithmetic than they save.
 */
constexpr std::size_t kBatchedPointsThreshold =
    static_cast<std::size_t>(batched::kBatchLanes);

/** Registry name of a backend ("auto", "statevector", ...). */
const char *backendName(EvalBackend kind);

/** Everything needed to construct (or cache) one evaluator. */
struct EvalSpec
{
    EvalBackend backend = EvalBackend::Auto;
    int layers = 1; //!< QAOA depth p the evaluator will be queried at.
    /**
     * Auto policy: graphs at or below this many nodes use the exact
     * statevector; above it, the closed form at p = 1 and otherwise
     * the light-cone evaluator, for which this value doubles as the
     * cone cap (the historical makeIdealEvaluator contract).
     */
    int exactQubitLimit = 16;
    NoiseModel noise;     //!< Non-ideal noise selects Trajectory in Auto.
    int trajectories = 48; //!< Trajectory backend only.
    std::uint64_t seed = 99; //!< Trajectory noise-stream seed.
    int shots = 0;        //!< 0 = exact noisy expectations; > 0 sampled.

    /** Ideal evaluation at depth @p p (Auto size/depth policy). */
    static EvalSpec ideal(int p, int exact_qubit_limit = 16);

    /**
     * Noisy trajectory evaluation under @p nm. Pins the Trajectory
     * backend (not Auto): asking for noisy evaluation means trajectory
     * averaging and shot sampling even when every channel of @p nm is
     * trivial — the historical makeNoisyEvaluator contract.
     */
    static EvalSpec noisy(const NoiseModel &nm, int p = 1,
                          int trajectories = 48, std::uint64_t seed = 99,
                          int shots = 0);

    /** Copy with a different depth (layerwise drivers). */
    EvalSpec withLayers(int p) const;
};

/**
 * THE backend-selection policy (satellite: one policy, one place).
 * Auto resolves to Trajectory under any non-ideal noise, otherwise to
 * the cheapest exact(ish) ideal backend for (graph, depth):
 * Statevector at or below exactQubitLimit qubits, AnalyticP1 at p = 1,
 * Lightcone above. Non-Auto specs pass through unchanged.
 */
EvalBackend resolveBackend(const EvalSpec &spec, const Graph &g);

/**
 * Point-aware resolution: like resolveBackend(spec, g), but an Auto
 * spec that lands on Statevector is promoted to StatevectorBatched
 * when the job carries at least kBatchedPointsThreshold points (the
 * two backends are byte-identical, so the promotion is invisible in
 * values — it only changes how the work is swept). Pinned non-Auto
 * specs always pass through unchanged.
 */
EvalBackend resolveBackend(const EvalSpec &spec, const Graph &g,
                           std::size_t points);

/**
 * True when the resolved backend is a pure function of (graph, spec,
 * params) — every backend except Trajectory, whose values depend on
 * the position of the point in the simulator's RNG stream history.
 * Deterministic backends unlock evaluator sharing and point-level
 * memoization in the engine.
 */
bool deterministicBackend(EvalBackend kind);

/**
 * Canonical cache key of the spec once resolved to @p kind: equal keys
 * guarantee evaluators are interchangeable (fields a backend ignores
 * are left out, so e.g. any-depth statevector specs share one entry).
 */
std::string backendCacheKey(const EvalSpec &spec, EvalBackend kind);

} // namespace redqaoa

#endif // REDQAOA_ENGINE_EVAL_SPEC_HPP
