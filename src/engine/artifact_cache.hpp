/**
 * @file
 * Graph-keyed cache of the per-graph artifacts every evaluator needs:
 * the 2^n integer cut table, the closed-form p=1 edge table, and
 * light-cone decompositions (keyed additionally by depth and cone
 * cap). Building these dominates evaluator construction — a 20-qubit
 * cut table alone is 4 MiB of single-pass work — so the engine builds
 * each artifact once per distinct graph and shares it, immutable,
 * across every evaluator and concurrent job that needs it.
 *
 * Graphs are identified structurally: a 64-bit FNV hash over the node
 * count and edge list buckets candidates, and an exact edge-list
 * comparison inside the bucket rules out collisions. All lookups are
 * mutex-guarded; the returned artifacts are const and safe to read
 * from any thread.
 */

#ifndef REDQAOA_ENGINE_ARTIFACT_CACHE_HPP
#define REDQAOA_ENGINE_ARTIFACT_CACHE_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "quantum/analytic_p1.hpp"
#include "quantum/lightcone.hpp"
#include "quantum/maxcut.hpp"

namespace redqaoa {

/** Structural 64-bit hash of (node count, edge list). */
std::uint64_t graphStructureHash(const Graph &g);

/** Exact structural equality (node count and edge lists match). */
bool graphStructureEqual(const Graph &a, const Graph &b);

class ArtifactCache
{
  public:
    /** Cache traffic counters (engine stats / bench metrics). */
    struct Stats
    {
        std::uint64_t hits = 0;   //!< Artifact requests served cached.
        std::uint64_t misses = 0; //!< Artifact requests that built.
        std::uint64_t graphs = 0; //!< Distinct graphs seen.
    };

    /**
     * Stable id of @p g's structure class, assigned on first sight.
     * The engine uses it as the graph component of memo keys.
     */
    std::uint64_t graphId(const Graph &g);

    /** Shared integer cut table (makeCutTable) of @p g. */
    std::shared_ptr<const CutTable> cutTable(const Graph &g);

    /** Shared closed-form p=1 edge table of @p g. */
    std::shared_ptr<const AnalyticP1Evaluator> analytic(const Graph &g);

    /** Shared cone decomposition of @p g at (@p p, @p max_cone_qubits). */
    std::shared_ptr<const LightconeEvaluator>
    lightcone(const Graph &g, int p, int max_cone_qubits);

    Stats stats() const;

  private:
    struct Entry
    {
        std::uint64_t id = 0;
        Graph graph; //!< Exact-compare copy backing the hash bucket.
        std::shared_ptr<const CutTable> cutTable;
        std::shared_ptr<const AnalyticP1Evaluator> analytic;
        /** Keyed by (depth, cone cap). */
        std::map<std::pair<int, int>,
                 std::shared_ptr<const LightconeEvaluator>>
            lightcones;
    };

    /** Entry for @p g, inserted if new. Callers hold mutex_. */
    Entry &entryFor(const Graph &g);

    mutable std::mutex mutex_;
    std::deque<Entry> entries_; //!< Deque: growth keeps refs stable.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> byHash_;
    Stats stats_;
};

} // namespace redqaoa

#endif // REDQAOA_ENGINE_ARTIFACT_CACHE_HPP
