/**
 * @file
 * EvalEngine: the shared evaluation service between the kernels and
 * the pipelines. One engine owns
 *
 *  - an ArtifactCache (per-graph cut tables, analytic edge tables,
 *    cone decompositions, built once and shared across evaluators),
 *  - an evaluator cache for deterministic backends (one shared
 *    instance per (graph, resolved spec)),
 *  - a point memo: identical (graph, spec, params) evaluations are
 *    served from the memo instead of recomputed, and
 *  - a job queue: callers submit batches of parameter points and get
 *    tickets; drain() shards every pending deterministic point from
 *    EVERY job across the global thread pool in one fan-out, instead
 *    of parallelizing only within a single batch.
 *
 * Determinism contracts (pinned by tests/test_engine.cpp):
 *  - engine-routed values are bit-identical to constructing the same
 *    evaluator directly, at any thread count (deterministic backends
 *    are pure functions of (graph, spec, params); a memoized value is
 *    the value a fresh computation would produce);
 *  - trajectory jobs run as whole batches on a fresh evaluator seeded
 *    from the spec, exactly like a direct NoisyEvaluator batch call,
 *    so they inherit the simulator's serial-stream-presplit guarantee;
 *  - a 1-thread pool executes the same work as a serial loop, in job
 *    submission order.
 *
 * The engine is thread-safe: pipeline-fleet scenarios running on pool
 * workers share one engine (nested parallel sections run inline), and
 * workers may submit jobs and get() their own tickets — that drain
 * runs inline on the worker. One composition is unsupported: an
 * EXTERNAL thread draining the engine while a pool fan-out that also
 * drives it is in flight. The external drain can claim a worker's
 * queued job and then block behind the pool's in-flight fan-out while
 * the worker waits on the claim — a deadlock. Keep cross-thread
 * traffic to evaluator()/objective() handles, or drain from one side
 * at a time.
 */

#ifndef REDQAOA_ENGINE_EVAL_ENGINE_HPP
#define REDQAOA_ENGINE_EVAL_ENGINE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "common/json.hpp"
#include "engine/artifact_cache.hpp"
#include "engine/backend_registry.hpp"
#include "engine/eval_spec.hpp"
#include "engine/result_store.hpp"
#include "opt/optimizer.hpp"
#include "quantum/evaluator.hpp"

namespace redqaoa {

class EvalEngine;

namespace detail {

/** Shared state behind one submitted job. */
struct EngineJobState
{
    EvalEngine *engine = nullptr;
    Graph graph;
    EvalSpec spec;
    std::vector<QaoaParams> params;
    std::vector<double> results;
    std::atomic<bool> ready{false};
};

} // namespace detail

/**
 * Handle to a submitted job. get() triggers a drain when the job is
 * still pending and blocks if another thread is already executing it.
 * The engine must outlive every ticket it issued.
 */
class EvalJobTicket
{
  public:
    EvalJobTicket() = default;

    /** The job's expectation values, in point order (drains if needed). */
    const std::vector<double> &get();

    bool ready() const { return state_ && state_->ready.load(); }

  private:
    friend class EvalEngine;
    explicit EvalJobTicket(std::shared_ptr<detail::EngineJobState> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<detail::EngineJobState> state_;
};

/**
 * Engine traffic counters (tests, bench metrics, service stats, fleet
 * reports). toJson() is THE serialization — every surface that reports
 * engine traffic (the fleet report's metadata.engine, the service
 * layer's `stats` method) emits this one document, so field sets can
 * never drift apart.
 */
struct EngineStats
{
    std::uint64_t jobs = 0;     //!< Jobs submitted.
    std::uint64_t jobsDrained = 0; //!< Jobs executed by drains.
    std::uint64_t drains = 0;   //!< drain() calls that found work.
    std::uint64_t points = 0;   //!< Parameter points across all jobs.
    std::uint64_t evaluated = 0; //!< Points actually computed (memo misses).
    std::uint64_t memoHits = 0; //!< Points served from the memo.
    std::uint64_t trajectoryJobs = 0; //!< Jobs on the noisy backend.
    std::uint64_t evaluatorHits = 0; //!< evaluator() served from cache.
    std::uint64_t evaluatorMisses = 0; //!< evaluator() cache fills.
    ArtifactCache::Stats artifacts; //!< Cache traffic.
    ResultStore::Stats store; //!< Warm-start store traffic (0s when none).

    /** memoHits / points (0 when no points were submitted). */
    double memoHitRate() const
    {
        return points == 0 ? 0.0
                           : static_cast<double>(memoHits) /
                                 static_cast<double>(points);
    }

    /** evaluatorHits / (hits + misses) (0 without traffic). */
    double evaluatorHitRate() const
    {
        std::uint64_t total = evaluatorHits + evaluatorMisses;
        return total == 0 ? 0.0
                          : static_cast<double>(evaluatorHits) /
                                static_cast<double>(total);
    }

    /**
     * The shared traffic document:
     *   {jobs, jobs_drained, drains, points, evaluated, memo_hits,
     *    memo_hit_rate, trajectory_jobs, evaluator_hits,
     *    evaluator_misses, artifact_hits, artifact_misses, graphs,
     *    store_warm_hits, store_cold_misses, store_records,
     *    store_appends, store_recovered_drops}
     * The store_* counters are present (zero) even without an attached
     * store — the key set never varies, which is the single-shape rule
     * the service's per-shard/aggregate key-set-equality test pins.
     */
    json::Value toJson() const;

    /**
     * Counter-wise sum (EngineShardSet aggregation; the derived rates
     * recompute from the summed counters).
     */
    EngineStats &operator+=(const EngineStats &rhs);
};

/**
 * Inverse of EngineStats::toJson for the raw counters (derived rates
 * recompute). Missing keys read as zero, so documents from older
 * workers still aggregate — redqaoa_lb uses this to sum the engine
 * blocks its health probes collect from the fleet.
 */
EngineStats engineStatsFromJson(const json::Value &doc);

class EvalEngine
{
  public:
    EvalEngine() = default;
    EvalEngine(const EvalEngine &) = delete;
    EvalEngine &operator=(const EvalEngine &) = delete;

    /**
     * Evaluator for (graph, spec). Deterministic backends come from
     * the evaluator cache — one shared, artifact-backed instance per
     * (graph, resolved spec), safe for concurrent expectation() calls.
     * Trajectory specs get a fresh instance per call (stateful RNG;
     * sharing would tie results to global call order), identical to
     * direct construction with the same arguments.
     */
    std::shared_ptr<CutEvaluator> evaluator(const Graph &g,
                                            const EvalSpec &spec);

    /**
     * Minimization objective -<H_c>(unflatten(x)) over an evaluator()
     * handle — the one adapter pipeline stages and optimizers use.
     */
    Objective objective(const Graph &g, const EvalSpec &spec);

    /** Queue a batch-evaluation job; runs at the next drain()/get(). */
    EvalJobTicket submit(const Graph &g, const EvalSpec &spec,
                         std::vector<QaoaParams> params);

    /**
     * Execute every pending job: deterministic points from all jobs
     * (minus memo hits) fan out over the global pool in one shot;
     * trajectory jobs then run as whole batches in submission order.
     * Jobs the point-aware resolveBackend overload promotes to the
     * batched statevector backend (Auto specs carrying >=
     * kBatchedPointsThreshold points on an exact-sized graph) sweep
     * their points through BatchedStateSet lane groups instead of
     * per-point tasks — byte-identical values, fewer table passes.
     */
    void drain();

    /** Submit + drain + get in one call (synchronous convenience). */
    std::vector<double> evaluate(const Graph &g, const EvalSpec &spec,
                                 std::vector<QaoaParams> params);

    ArtifactCache &artifacts() { return cache_; }

    /**
     * Attach the disk-backed warm-start tier: drains consult it on
     * point-memo misses and append newly computed deterministic values
     * (trajectory batches stay process-local — their values depend on
     * batch stream order). Attach before traffic: the pointer itself
     * is unsynchronized by design, like the constructor.
     */
    void attachStore(std::shared_ptr<ResultStore> store)
    {
        store_ = std::move(store);
    }

    const std::shared_ptr<ResultStore> &store() const { return store_; }

    /**
     * The store key of @p g (ResultStore::graphKey), computed once per
     * distinct structure and cached by graph id — the canonical
     * certificate behind it is far too heavy for per-request work.
     */
    std::string storeKeyFor(const Graph &g);

    /**
     * Caches grow monotonically with distinct traffic (one memo entry
     * per distinct point, one artifact set per distinct graph); a
     * bounded sweep fits comfortably, but a service looping over
     * ever-fresh graphs/points should clear between phases. Drops the
     * point and batch memos (values are pure, so later recomputation
     * is identical); shared evaluators and artifacts stay.
     */
    void clearMemos();

    EngineStats stats() const;

  private:
    friend class EvalJobTicket;

    using JobPtr = std::shared_ptr<detail::EngineJobState>;
    /** (graph id, resolved spec key, param doubles as exact bits). */
    using MemoKey = std::tuple<std::uint64_t, std::string,
                               std::vector<std::uint64_t>>;

    /** Evaluator-cache lookup/fill; requires a deterministic kind. */
    std::shared_ptr<CutEvaluator> cachedEvaluator(const Graph &g,
                                                  const EvalSpec &spec,
                                                  EvalBackend kind);

    /** Run one trajectory job (fresh evaluator or whole-batch memo). */
    void runTrajectoryJob(detail::EngineJobState &job);

    ArtifactCache cache_;

    mutable std::mutex mutex_; //!< Queue, memo, evaluator cache, stats.
    std::condition_variable jobDone_; //!< get() waits on foreign drains.
    std::vector<JobPtr> pending_;
    std::map<std::pair<std::uint64_t, std::string>,
             std::shared_ptr<CutEvaluator>>
        evaluators_;
    std::map<MemoKey, double> pointMemo_;
    /** Whole-batch memo for the trajectory backend (see drain()). */
    std::map<MemoKey, std::shared_ptr<const std::vector<double>>>
        batchMemo_;
    std::shared_ptr<ResultStore> store_; //!< Null without --store-dir.
    std::map<std::uint64_t, std::string> storeKeys_; //!< By graph id.
    EngineStats stats_;
};

} // namespace redqaoa

#endif // REDQAOA_ENGINE_EVAL_ENGINE_HPP
