#include "engine/engine_shard_set.hpp"

#include <stdexcept>

namespace redqaoa {

EngineShardSet::EngineShardSet(int shards, const std::string &storeDir)
{
    if (shards < 1)
        shards = 1;
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
        auto engine = std::make_shared<EvalEngine>();
        if (!storeDir.empty())
            engine->attachStore(std::make_shared<ResultStore>(
                storeDir + "/shard" + std::to_string(i)));
        shards_.push_back(std::move(engine));
    }
}

const std::shared_ptr<EvalEngine> &
EngineShardSet::shard(std::size_t index) const
{
    if (index >= shards_.size())
        throw std::out_of_range("EngineShardSet: shard index " +
                                std::to_string(index) + " out of " +
                                std::to_string(shards_.size()));
    return shards_[index];
}

EngineStats
EngineShardSet::aggregateStats() const
{
    EngineStats total;
    for (const auto &engine : shards_)
        total += engine->stats();
    return total;
}

std::vector<EngineStats>
EngineShardSet::shardStats() const
{
    std::vector<EngineStats> out;
    out.reserve(shards_.size());
    for (const auto &engine : shards_)
        out.push_back(engine->stats());
    return out;
}

} // namespace redqaoa
