/**
 * @file
 * redqaoa_lb — the fault-tolerant serving front: a supervised fleet of
 * redqaoa_serve workers behind one NDJSON TCP endpoint.
 *
 *   redqaoa_lb --serve-bin ./redqaoa_serve              2-worker fleet
 *   redqaoa_lb --workers 4 --port 7777                  fixed front port
 *   redqaoa_lb --port-file lb.port                      publish the port
 *   redqaoa_lb --worker-arg --threads --worker-arg 2    pass-through args
 *   redqaoa_lb --worker-faults "abort@40"               chaos the workers
 *   redqaoa_lb --faults "reset@10/40"                   chaos the front
 *   redqaoa_lb --store-dir DIR          per-lane persistent warm-start
 *                                       stores (survive restarts)
 *
 * Requests are routed by graph-structure hash (same graph -> same
 * worker -> same shard: the bit-identity contract holds through the
 * lb), dead or wedged workers are restarted with capped exponential
 * backoff, and interrupted requests are replayed against the restarted
 * worker — or answered with the typed `worker_failed` error, which
 * clients retry. See src/service/supervisor.hpp and the README "Fault
 * tolerance" section. Exit codes: 0 clean shutdown, 1 startup failure,
 * 2 usage error.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics_http.hpp"
#include "service/supervisor.hpp"

using namespace redqaoa;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: redqaoa_lb --serve-bin PATH [--workers N] [--port N]\n"
        "                  [--port-file PATH] [--queue N]\n"
        "                  [--max-conns N] [--idle-timeout-ms N]\n"
        "                  [--replay-budget N] [--max-restarts N]\n"
        "                  [--store-dir DIR] [--worker-arg ARG]...\n"
        "                  [--worker-faults SPEC] [--faults SPEC]\n"
        "                  [--help]\n"
        "\n"
        "  --serve-bin P      path to the redqaoa_serve binary\n"
        "                     (required)\n"
        "  --workers N        worker process count (default 2)\n"
        "  --port N           front TCP port (default 0 = ephemeral)\n"
        "  --port-file P      write the bound front port to file P\n"
        "  --queue N          lb queue capacity per worker lane\n"
        "                     (default 64)\n"
        "  --max-conns N      concurrent client connection cap\n"
        "                     (default 256)\n"
        "  --idle-timeout-ms N  evict idle client connections\n"
        "                     (default 0 = never)\n"
        "  --replay-budget N  forward attempts per request before the\n"
        "                     typed `worker_failed` answer (default 4)\n"
        "  --max-restarts N   restarts per worker lane before it is\n"
        "                     permanently failed (default 8)\n"
        "  --store-dir DIR    persistent warm-start store root; lane i\n"
        "                     gets DIR/worker<i> (a restarted worker\n"
        "                     reopens its lane's store and answers\n"
        "                     repeat requests warm, byte-identically)\n"
        "  --worker-arg A     extra argv entry for every worker\n"
        "                     (repeatable; e.g. --worker-arg --threads\n"
        "                     --worker-arg 2)\n"
        "  --worker-faults S  --faults spec handed to every worker\n"
        "  --faults S         arm the lb front's own fault plane\n"
        "                     (never inherited by workers; grammar in\n"
        "                     src/service/fault_injection.hpp)\n"
        "  --metrics-port N   serve Prometheus text exposition over\n"
        "                     HTTP GET /metrics on 127.0.0.1:N\n"
        "                     (0 = ephemeral)\n"
        "  --metrics-port-file P  write the bound metrics port to P\n"
        "\n"
        "Logging: REDQAOA_LOG=debug|info|warn|error sets the stderr\n"
        "level (default info); REDQAOA_LOG_FORMAT=json switches the\n"
        "line format.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    service::SupervisorOptions sup;
    service::FleetOptions fleet_opts;
    int port = 0;
    std::string port_file;
    int metrics_port = -1; // -1 = no metrics endpoint.
    std::string metrics_port_file;
    obs::configureLogFromEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (++i >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[i];
        };
        auto intValue = [&](const char *flag) -> long {
            const char *text = value(flag);
            char *end = nullptr;
            long v = std::strtol(text, &end, 10);
            if (end == text || *end != '\0') {
                std::fprintf(stderr, "error: bad %s value '%s'\n", flag,
                             text);
                std::exit(2);
            }
            return v;
        };
        if (arg == "--serve-bin") {
            sup.serveBinary = value("--serve-bin");
        } else if (arg == "--workers") {
            long n = intValue("--workers");
            if (n < 1 || n > 64) {
                std::fprintf(stderr,
                             "error: --workers must be in [1, 64]\n");
                return 2;
            }
            sup.workers = static_cast<std::size_t>(n);
        } else if (arg == "--port") {
            port = static_cast<int>(intValue("--port"));
            if (port < 0 || port > 65535) {
                std::fprintf(stderr, "error: --port out of range\n");
                return 2;
            }
        } else if (arg == "--port-file") {
            port_file = value("--port-file");
        } else if (arg == "--queue") {
            long n = intValue("--queue");
            if (n < 1) {
                std::fprintf(stderr, "error: --queue must be >= 1\n");
                return 2;
            }
            fleet_opts.server.queueCapacity =
                static_cast<std::size_t>(n);
        } else if (arg == "--max-conns") {
            long n = intValue("--max-conns");
            if (n < 1) {
                std::fprintf(stderr,
                             "error: --max-conns must be >= 1\n");
                return 2;
            }
            fleet_opts.server.maxConnections =
                static_cast<std::size_t>(n);
        } else if (arg == "--idle-timeout-ms") {
            long n = intValue("--idle-timeout-ms");
            if (n < 0) {
                std::fprintf(stderr,
                             "error: --idle-timeout-ms must be >= 0\n");
                return 2;
            }
            fleet_opts.server.idleTimeoutMs = static_cast<double>(n);
        } else if (arg == "--replay-budget") {
            long n = intValue("--replay-budget");
            if (n < 1) {
                std::fprintf(stderr,
                             "error: --replay-budget must be >= 1\n");
                return 2;
            }
            fleet_opts.replayBudget = static_cast<int>(n);
        } else if (arg == "--max-restarts") {
            long n = intValue("--max-restarts");
            if (n < 0) {
                std::fprintf(stderr,
                             "error: --max-restarts must be >= 0\n");
                return 2;
            }
            sup.maxRestarts = static_cast<int>(n);
        } else if (arg == "--store-dir") {
            sup.storeDir = value("--store-dir");
        } else if (arg == "--worker-arg") {
            sup.workerArgs.push_back(value("--worker-arg"));
        } else if (arg == "--metrics-port") {
            metrics_port = static_cast<int>(intValue("--metrics-port"));
            if (metrics_port < 0 || metrics_port > 65535) {
                std::fprintf(stderr,
                             "error: --metrics-port out of range\n");
                return 2;
            }
        } else if (arg == "--metrics-port-file") {
            metrics_port_file = value("--metrics-port-file");
        } else if (arg == "--worker-faults") {
            sup.workerFaults = value("--worker-faults");
        } else if (arg == "--faults") {
            try {
                service::FaultPlane::global().configure(
                    value("--faults"));
            } catch (const std::exception &e) {
                std::fprintf(stderr, "error: bad --faults spec: %s\n",
                             e.what());
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown argument '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }
    if (sup.serveBinary.empty()) {
        std::fprintf(stderr, "error: --serve-bin is required\n");
        usage(stderr);
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    service::FaultPlane &faults = service::FaultPlane::global();
    if (faults.enabled())
        // chaos_smoke.sh greps for this exact event name.
        obs::logWarn("redqaoa_lb", "FAULT INJECTION ARMED");

    try {
        service::WorkerSupervisor supervisor(sup);
        service::WorkerFleetService fleet(supervisor, fleet_opts);
        fleet.attachFaultStats(&faults);
        service::TcpServiceListener listener(fleet, port, &faults);
        obs::logInfo("redqaoa_lb", "serving")
            .field("workers",
                   static_cast<unsigned long long>(
                       supervisor.workerCount()))
            .field("address", "127.0.0.1")
            .field("port", listener.port());
        if (!port_file.empty()) {
            std::ofstream out(port_file);
            out << listener.port() << "\n";
            if (!out.good()) {
                std::fprintf(stderr, "error: cannot write '%s'\n",
                             port_file.c_str());
                return 1;
            }
        }

        std::unique_ptr<obs::MetricsHttpServer> metrics;
        if (metrics_port >= 0) {
            metrics = std::make_unique<obs::MetricsHttpServer>(
                metrics_port, [&fleet] { return fleet.metricsText(); });
            obs::logInfo("redqaoa_lb", "metrics endpoint up")
                .field("port", metrics->port());
            if (!metrics_port_file.empty()) {
                std::ofstream out(metrics_port_file);
                out << metrics->port() << "\n";
                if (!out.good()) {
                    std::fprintf(stderr, "error: cannot write '%s'\n",
                                 metrics_port_file.c_str());
                    return 1;
                }
            }
        }

        while (!fleet.waitShutdownFor(0.2)) {
            if (g_signal != 0)
                break;
        }
        // Ordered teardown: client transport first (flushing in-flight
        // responses while the fleet still forwards), then the metrics
        // endpoint (its render callback walks the fleet), then the
        // fleet, then the workers.
        listener.stop();
        metrics.reset();
        fleet.stop();
        supervisor.stop();
        // Smoke scripts grep for this exact event name.
        obs::logInfo("redqaoa_lb", "clean shutdown")
            .field("restarts",
                   static_cast<unsigned long long>(
                       supervisor.totalRestarts()));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "redqaoa_lb: fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
