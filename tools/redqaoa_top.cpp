/**
 * @file
 * redqaoa_top — a terminal dashboard over the service metrics plane.
 *
 *   redqaoa_top --port 7777              poll an lb or worker forever
 *   redqaoa_top --port 7777 --once       one snapshot, then exit
 *   redqaoa_top --interval-ms 500        refresh cadence
 *   redqaoa_top --iterations 10          bounded run (0 = forever)
 *   redqaoa_top --no-clear               append frames (log-friendly)
 *
 * Speaks the NDJSON service protocol directly: each frame issues a
 * `health` and a `metrics` request (schema_version 2) on one TCP
 * connection and renders the fleet/worker identity, the queue and
 * traffic gauges, the engine counters, and every metric family the
 * process exposes. Works identically against redqaoa_serve and
 * redqaoa_lb since both answer the same control-plane methods with
 * the same family vocabulary (src/obs/metrics.hpp). Exit codes:
 * 0 ok, 1 connection failure, 2 usage error.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "service/socket_util.hpp"

using namespace redqaoa;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: redqaoa_top --port N [--interval-ms N] [--iterations N]\n"
        "                   [--once] [--no-clear] [--help]\n"
        "\n"
        "  --port N         service port of a redqaoa_serve or\n"
        "                   redqaoa_lb process (required)\n"
        "  --interval-ms N  refresh interval (default 1000)\n"
        "  --iterations N   frames before exiting (default 0 = forever)\n"
        "  --once           shorthand for --iterations 1 --no-clear\n"
        "  --no-clear       do not clear the screen between frames\n");
}

/** One request/response exchange; empty string on transport failure. */
bool
exchange(int fd, service::detail::FdLineReader &reader,
         const std::string &method, long id, json::Value &result_out)
{
    std::string line = "{\"id\":" + std::to_string(id) +
                       ",\"method\":\"" + method +
                       "\",\"schema_version\":2}";
    std::string response;
    if (!service::detail::writeLine(fd, line) ||
        !reader.readLine(response))
        return false;
    try {
        json::Value doc = json::Value::parse(response);
        const json::Value *result = doc.find("result");
        if (result == nullptr)
            return false;
        result_out = *result;
        return true;
    } catch (...) {
        return false;
    }
}

std::string
formatValue(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

std::string
sampleLabels(const json::Value &sample)
{
    const json::Value *labels = sample.find("labels");
    if (labels == nullptr || !labels->isObject() ||
        labels->asObject().empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : labels->asObject()) {
        if (!first)
            out += ",";
        first = false;
        out += key + "=" +
               (value.isString() ? value.asString() : value.dump());
    }
    out += "}";
    return out;
}

void
renderHealth(const json::Value &health, int port)
{
    std::string role = "worker";
    if (const json::Value *r = health.find("role");
        r != nullptr && r->isString())
        role = r->asString();
    std::string status = "?";
    if (const json::Value *s = health.find("status");
        s != nullptr && s->isString())
        status = s->asString();
    double uptime = 0.0;
    if (const json::Value *u = health.find("uptime_seconds");
        u != nullptr && u->isNumber())
        uptime = u->asNumber();
    double pid = 0.0;
    if (const json::Value *p = health.find("pid");
        p != nullptr && p->isNumber())
        pid = p->asNumber();
    std::printf("redqaoa_top — 127.0.0.1:%d  role=%s status=%s"
                "  up %.1fs  pid %lld\n",
                port, role.c_str(), status.c_str(), uptime,
                static_cast<long long>(pid));

    if (const json::Value *workers = health.find("workers");
        workers != nullptr && workers->isArray()) {
        std::printf("workers:");
        const auto &list = workers->asArray();
        for (std::size_t i = 0; i < list.size(); ++i) {
            std::string state = "?";
            double wpid = -1.0;
            double restarts = 0.0;
            if (const json::Value *s = list[i].find("state");
                s != nullptr && s->isString())
                state = s->asString();
            if (const json::Value *p = list[i].find("pid");
                p != nullptr && p->isNumber())
                wpid = p->asNumber();
            if (const json::Value *r = list[i].find("restarts");
                r != nullptr && r->isNumber())
                restarts = r->asNumber();
            std::printf("  [%zu] %s pid=%lld restarts=%lld", i,
                        state.c_str(), static_cast<long long>(wpid),
                        static_cast<long long>(restarts));
        }
        std::printf("\n");
    }
    if (const json::Value *depths = health.find("queue_depths");
        depths != nullptr && depths->isArray()) {
        std::printf("queues:");
        const auto &list = depths->asArray();
        for (std::size_t i = 0; i < list.size(); ++i)
            std::printf(" [%zu]=%lld", i,
                        list[i].isNumber()
                            ? static_cast<long long>(list[i].asNumber())
                            : -1LL);
        std::printf("\n");
    }
}

void
renderMetrics(const json::Value &metrics)
{
    if (const json::Value *engine = metrics.find("engine");
        engine != nullptr && engine->isObject()) {
        std::printf("engine:");
        for (const auto &[key, value] : engine->asObject())
            if (value.isNumber())
                std::printf(" %s=%s", key.c_str(),
                            formatValue(value.asNumber()).c_str());
        std::printf("\n");
    }
    const json::Value *families = metrics.find("families");
    if (families == nullptr || !families->isArray())
        return;
    std::printf("metrics:\n");
    for (const json::Value &family : families->asArray()) {
        const json::Value *name = family.find("name");
        const json::Value *type = family.find("type");
        const json::Value *samples = family.find("samples");
        if (name == nullptr || !name->isString() || type == nullptr ||
            !type->isString() || samples == nullptr ||
            !samples->isArray())
            continue;
        const bool histogram = type->asString() == "histogram";
        for (const json::Value &sample : samples->asArray()) {
            const std::string labels = sampleLabels(sample);
            if (histogram) {
                auto num = [&](const char *key) {
                    const json::Value *v = sample.find(key);
                    return v != nullptr && v->isNumber() ? v->asNumber()
                                                         : 0.0;
                };
                std::printf(
                    "  %-44s count=%lld p50=%.2fms p99=%.2fms"
                    " max=%.2fms\n",
                    (name->asString() + labels).c_str(),
                    static_cast<long long>(num("count")), num("p50_ms"),
                    num("p99_ms"), num("max_ms"));
            } else if (const json::Value *v = sample.find("value");
                       v != nullptr && v->isNumber()) {
                std::printf("  %-44s %s\n",
                            (name->asString() + labels).c_str(),
                            formatValue(v->asNumber()).c_str());
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int port = -1;
    long interval_ms = 1000;
    long iterations = 0;
    bool clear = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intValue = [&](const char *flag) -> long {
            if (++i >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", flag);
                std::exit(2);
            }
            char *end = nullptr;
            long v = std::strtol(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "error: bad %s value '%s'\n", flag,
                             argv[i]);
                std::exit(2);
            }
            return v;
        };
        if (arg == "--port") {
            port = static_cast<int>(intValue("--port"));
            if (port < 1 || port > 65535) {
                std::fprintf(stderr, "error: --port out of range\n");
                return 2;
            }
        } else if (arg == "--interval-ms") {
            interval_ms = intValue("--interval-ms");
            if (interval_ms < 1) {
                std::fprintf(stderr,
                             "error: --interval-ms must be >= 1\n");
                return 2;
            }
        } else if (arg == "--iterations") {
            iterations = intValue("--iterations");
            if (iterations < 0) {
                std::fprintf(stderr,
                             "error: --iterations must be >= 0\n");
                return 2;
            }
        } else if (arg == "--once") {
            iterations = 1;
            clear = false;
        } else if (arg == "--no-clear") {
            clear = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown argument '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }
    if (port < 0) {
        std::fprintf(stderr, "error: --port is required\n");
        usage(stderr);
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    service::detail::ignoreSigpipe();

    long id = 0;
    for (long frame = 0; iterations == 0 || frame < iterations;
         ++frame) {
        if (g_signal != 0)
            break;
        // One connection per frame: the dashboard survives worker
        // restarts and lb failovers without holding a stale fd.
        int fd = service::detail::connectLoopback(port, 2000);
        if (fd < 0) {
            std::fprintf(stderr,
                         "redqaoa_top: cannot connect to 127.0.0.1:%d:"
                         " %s\n",
                         port, std::strerror(errno));
            return 1;
        }
        service::detail::FdLineReader reader(fd);
        json::Value health;
        json::Value metrics;
        const bool ok = exchange(fd, reader, "health", ++id, health) &&
                        exchange(fd, reader, "metrics", ++id, metrics);
        ::close(fd);
        if (!ok) {
            std::fprintf(stderr,
                         "redqaoa_top: no answer from 127.0.0.1:%d\n",
                         port);
            return 1;
        }
        if (clear)
            std::printf("\033[2J\033[H");
        renderHealth(health, port);
        renderMetrics(metrics);
        std::fflush(stdout);
        if (iterations != 0 && frame + 1 >= iterations)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    return 0;
}
