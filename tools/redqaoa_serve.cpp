/**
 * @file
 * redqaoa_serve — the Red-QAOA request server binary.
 *
 *   redqaoa_serve                       serve stdin/stdout (pipes)
 *   redqaoa_serve --tcp                 serve 127.0.0.1:<ephemeral>
 *   redqaoa_serve --tcp --port 7777     serve a fixed port
 *   redqaoa_serve --tcp --port-file p   write the bound port to p
 *   redqaoa_serve --threads 4           pin the evaluation pool size
 *   redqaoa_serve --queue 128           per-shard admission capacity
 *   redqaoa_serve --shards 4            engine shard count
 *   redqaoa_serve --max-conns 64        concurrent TCP connection cap
 *   redqaoa_serve --idle-timeout-ms 30000   evict idle connections
 *   redqaoa_serve --store-dir DIR       persistent warm-start store
 *                                       (survives restarts; README
 *                                       "Persistent warm-start")
 *   redqaoa_serve --faults "abort@40"   arm deterministic fault injection
 *                                       (grammar: fault_injection.hpp;
 *                                       also env REDQAOA_FAULTS)
 *
 * The protocol is newline-delimited JSON (see src/service/protocol.hpp
 * and the README "Service" section). Stdio mode serves until EOF; TCP
 * mode serves until a `shutdown` request or SIGINT/SIGTERM. On exit
 * the cumulative traffic counters are printed to stderr. Exit codes:
 * 0 clean shutdown, 2 usage error.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/thread_pool.hpp"
#include "obs/log.hpp"
#include "obs/metrics_http.hpp"
#include "service/server.hpp"

using namespace redqaoa;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: redqaoa_serve [--stdio | --tcp] [--port N]\n"
        "                     [--port-file PATH] [--threads N]\n"
        "                     [--queue N] [--shards N]\n"
        "                     [--max-conns N] [--idle-timeout-ms N]\n"
        "                     [--store-dir DIR] [--help]\n"
        "\n"
        "  --stdio            serve stdin/stdout (default)\n"
        "  --tcp              serve a localhost TCP socket\n"
        "  --port N           TCP port (default 0 = ephemeral)\n"
        "  --port-file P      write the bound TCP port to file P\n"
        "  --threads N        evaluation thread-pool size (default:\n"
        "                     REDQAOA_THREADS, else hardware threads)\n"
        "  --queue N          per-shard admission capacity (default 64)\n"
        "  --shards N         engine shards; a graph always lands on\n"
        "                     the same shard (default 1)\n"
        "  --max-conns N      concurrent TCP connection cap; excess\n"
        "                     accepts are bounced with `overloaded`\n"
        "                     (default 256)\n"
        "  --idle-timeout-ms N  evict connections idle that long with\n"
        "                     nothing in flight (default 0 = never)\n"
        "  --store-dir DIR    persist optimize/point results under DIR\n"
        "                     (one subdir per shard); restarts replay\n"
        "                     warm, byte-identical answers\n"
        "  --faults SPEC      arm the deterministic fault plane (TCP\n"
        "                     mode; overrides REDQAOA_FAULTS; grammar\n"
        "                     in src/service/fault_injection.hpp)\n"
        "  --metrics-port N   serve Prometheus text exposition over\n"
        "                     HTTP GET /metrics on 127.0.0.1:N\n"
        "                     (0 = ephemeral)\n"
        "  --metrics-port-file P  write the bound metrics port to P\n"
        "\n"
        "Logging: REDQAOA_LOG=debug|info|warn|error sets the stderr\n"
        "level (default info); REDQAOA_LOG_FORMAT=json switches the\n"
        "line format. REDQAOA_PROFILE=off disables stage profiling.\n");
}

void
printTraffic(const service::ServerStats &stats)
{
    obs::logInfo("redqaoa_serve", "traffic summary")
        .field("served", static_cast<unsigned long long>(stats.served))
        .field("ok", static_cast<unsigned long long>(stats.okCount))
        .field("errors",
               static_cast<unsigned long long>(stats.errorCount))
        .field("overloaded",
               static_cast<unsigned long long>(stats.rejectedOverload))
        .field("expired",
               static_cast<unsigned long long>(stats.expiredDeadline))
        .field("p50_ms", stats.latency.percentileMs(0.50))
        .field("p99_ms", stats.latency.percentileMs(0.99));
}

} // namespace

int
main(int argc, char **argv)
{
    bool tcp = false;
    bool stdio_flag = false;
    int port = 0;
    std::string port_file;
    int metrics_port = -1; // -1 = no metrics endpoint.
    std::string metrics_port_file;
    service::ServerOptions opts;
    obs::configureLogFromEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intValue = [&](const char *flag) -> long {
            if (++i >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", flag);
                std::exit(2);
            }
            char *end = nullptr;
            long v = std::strtol(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "error: bad %s value '%s'\n", flag,
                             argv[i]);
                std::exit(2);
            }
            return v;
        };
        if (arg == "--tcp") {
            tcp = true;
        } else if (arg == "--stdio") {
            stdio_flag = true;
        } else if (arg == "--port") {
            port = static_cast<int>(intValue("--port"));
            if (port < 0 || port > 65535) {
                std::fprintf(stderr, "error: --port out of range\n");
                return 2;
            }
        } else if (arg == "--port-file") {
            if (++i >= argc) {
                std::fprintf(stderr, "error: --port-file needs a path\n");
                return 2;
            }
            port_file = argv[i];
        } else if (arg == "--threads") {
            long threads = intValue("--threads");
            if (threads < 1) {
                std::fprintf(stderr, "error: --threads must be >= 1\n");
                return 2;
            }
            ThreadPool::setGlobalThreads(static_cast<int>(threads));
        } else if (arg == "--queue") {
            long queue = intValue("--queue");
            if (queue < 1) {
                std::fprintf(stderr, "error: --queue must be >= 1\n");
                return 2;
            }
            opts.queueCapacity = static_cast<std::size_t>(queue);
        } else if (arg == "--shards") {
            long shards = intValue("--shards");
            if (shards < 1 || shards > 64) {
                std::fprintf(stderr,
                             "error: --shards must be in [1, 64]\n");
                return 2;
            }
            opts.shards = static_cast<int>(shards);
        } else if (arg == "--max-conns") {
            long conns = intValue("--max-conns");
            if (conns < 1) {
                std::fprintf(stderr,
                             "error: --max-conns must be >= 1\n");
                return 2;
            }
            opts.maxConnections = static_cast<std::size_t>(conns);
        } else if (arg == "--idle-timeout-ms") {
            long idle = intValue("--idle-timeout-ms");
            if (idle < 0) {
                std::fprintf(stderr,
                             "error: --idle-timeout-ms must be >= 0\n");
                return 2;
            }
            opts.idleTimeoutMs = static_cast<double>(idle);
        } else if (arg == "--store-dir") {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "error: --store-dir needs a path\n");
                return 2;
            }
            opts.storeDir = argv[i];
        } else if (arg == "--metrics-port") {
            metrics_port = static_cast<int>(intValue("--metrics-port"));
            if (metrics_port < 0 || metrics_port > 65535) {
                std::fprintf(stderr,
                             "error: --metrics-port out of range\n");
                return 2;
            }
        } else if (arg == "--metrics-port-file") {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "error: --metrics-port-file needs a path\n");
                return 2;
            }
            metrics_port_file = argv[i];
        } else if (arg == "--faults") {
            if (++i >= argc) {
                std::fprintf(stderr, "error: --faults needs a spec\n");
                return 2;
            }
            try {
                service::FaultPlane::global().configure(argv[i]);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "error: bad --faults spec: %s\n",
                             e.what());
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown argument '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }
    if (tcp && stdio_flag) {
        std::fprintf(stderr, "error: pick one of --stdio / --tcp\n");
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN); // Dropped clients are not fatal.

    service::ServiceServer server(opts);
    // NOTE: the smoke scripts grep the text rendering of this event
    // for "shards=4"; keep the field name.
    obs::logInfo("redqaoa_serve", "serving")
        .field("threads", ThreadPool::globalThreadCount())
        .field("queue",
               static_cast<unsigned long long>(opts.queueCapacity))
        .field("shards", server.options().shards)
        .field("max_conns",
               static_cast<unsigned long long>(opts.maxConnections))
        .field("idle_timeout_ms", opts.idleTimeoutMs)
        .field("store_dir",
               opts.storeDir.empty() ? "(none)" : opts.storeDir);

    std::unique_ptr<obs::MetricsHttpServer> metrics;
    if (metrics_port >= 0) {
        try {
            metrics = std::make_unique<obs::MetricsHttpServer>(
                metrics_port, [&server] { return server.metricsText(); });
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: metrics endpoint: %s\n",
                         e.what());
            return 2;
        }
        obs::logInfo("redqaoa_serve", "metrics endpoint up")
            .field("port", metrics->port());
        if (!metrics_port_file.empty()) {
            std::ofstream out(metrics_port_file);
            out << metrics->port() << "\n";
            if (!out.good()) {
                std::fprintf(stderr, "error: cannot write '%s'\n",
                             metrics_port_file.c_str());
                return 2;
            }
        }
    }

    if (!tcp) {
        serveStream(server, std::cin, std::cout);
        server.stop();
        printTraffic(server.stats());
        return 0;
    }

    service::FaultPlane &faults = service::FaultPlane::global();
    if (faults.enabled())
        // chaos_smoke.sh greps for this exact event name.
        obs::logWarn("redqaoa_serve", "FAULT INJECTION ARMED");
    service::TcpServiceListener listener(server, port, &faults);
    obs::logInfo("redqaoa_serve", "listening")
        .field("address", "127.0.0.1")
        .field("port", listener.port());
    if (!port_file.empty()) {
        std::ofstream out(port_file);
        out << listener.port() << "\n";
        if (!out.good()) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         port_file.c_str());
            listener.stop();
            server.stop();
            return 2;
        }
    }

    // Serve until a shutdown request lands or a signal arrives.
    while (!server.waitShutdownFor(0.2)) {
        if (g_signal != 0)
            break;
    }
    // Transport down first (flushing in-flight responses), then the
    // server (see TcpServiceListener::stop).
    listener.stop();
    server.stop();
    printTraffic(server.stats());
    // Smoke scripts grep for this exact event name.
    obs::logInfo("redqaoa_serve", "clean shutdown");
    return 0;
}
