/**
 * @file
 * Domain example 1: chemistry-style workloads.
 *
 * The paper's AIDS dataset is a corpus of small molecule graphs. This
 * example sweeps a batch of synthetic molecules, reduces each with
 * Red-QAOA, and reports per-molecule reductions plus the ideal-landscape
 * MSE between original and distilled instance — the §6.2 protocol on a
 * batch small enough to run in seconds.
 *
 * Usage: ./molecule_maxcut
 */

#include <cstdio>

#include "core/red_qaoa.hpp"
#include "engine/eval_engine.hpp"
#include "graph/datasets.hpp"
#include "landscape/landscape.hpp"

using namespace redqaoa;

int
main()
{
    Dataset aids = datasets::makeAids(7001, 60);
    auto batch = aids.filterByNodes(6, 10);
    if (batch.size() > 12)
        batch.resize(12);

    std::printf("Molecule batch: %zu graphs (6-10 atoms)\n\n",
                batch.size());
    std::printf("%-4s %-18s %-18s %-8s %-8s %-10s\n", "#", "original",
                "distilled", "nodes-", "edges-", "MSE");

    Rng rng(11);
    RedQaoaReducer reducer;
    EvalEngine engine;
    const EvalSpec spec = EvalSpec::ideal(1);
    double total_mse = 0.0, total_nodes = 0.0, total_edges = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Graph &g = batch[i];
        ReductionResult red = reducer.reduce(g, rng);

        // Ideal-landscape comparison (Eq. 12): 24x24 p=1 grid. One
        // engine serves the whole batch — molecules that distill to
        // the same structure share tables and memoized grid points.
        Landscape base = Landscape::evaluate(engine, g, spec, 24);
        Landscape dist =
            Landscape::evaluate(engine, red.reduced.graph, spec, 24);
        double mse = landscapeMse(base, dist);

        std::printf("%-4zu %-18s %-18s %-8.0f%% %-7.0f%% %-10.4f\n", i,
                    g.summary().c_str(),
                    red.reduced.graph.summary().c_str(),
                    100.0 * red.nodeReduction, 100.0 * red.edgeReduction,
                    mse);
        total_mse += mse;
        total_nodes += red.nodeReduction;
        total_edges += red.edgeReduction;
    }
    double n = static_cast<double>(batch.size());
    std::printf("\nmeans: node reduction %.0f%%, edge reduction %.0f%%, "
                "MSE %.4f\n",
                100.0 * total_nodes / n, 100.0 * total_edges / n,
                total_mse / n);
    std::printf("(paper reports ~28%% nodes, ~37%% edges, MSE <= 0.02 "
                "across datasets)\n");
    return 0;
}
