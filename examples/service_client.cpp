/**
 * @file
 * Service-client tour: drives every method of a running redqaoa_serve
 * TCP endpoint through the typed C++ ServiceClient — probe the
 * server's capabilities with hello, evaluate a small landscape batch,
 * distill a graph, optimize parameters, run one full pipeline, launch
 * a miniature fleet, read the traffic counters, probe liveness with
 * health, and (optionally) ask the server to shut down.
 *
 * Usage: ./example_service_client <port> [--shutdown]
 *
 * Start the server first:   ./redqaoa_serve --tcp --port-file port.txt
 * then:                     ./example_service_client "$(cat port.txt)"
 *
 * Exit codes: 0 when every call round-trips, 1 on any failure (CI's
 * service smoke job gates on this).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/generators.hpp"
#include "landscape/landscape.hpp"
#include "service/client.hpp"

using namespace redqaoa;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: example_service_client <port> [--shutdown]\n");
        return 1;
    }
    int port = std::atoi(argv[1]);
    bool shutdown = argc > 2 && std::string(argv[2]) == "--shutdown";

    try {
        service::ConnectOptions copts;
        copts.port = port;
        copts.maxAttempts = 5; // Ride out a server still binding.
        service::ServiceClient client =
            service::ServiceClient::connect(copts);
        std::printf("Connected to redqaoa_serve on 127.0.0.1:%d\n", port);

        // 0. hello — the capability handshake.
        service::ServerInfo info = client.hello();
        std::printf("hello    : %s, %d shard(s), queue %zu,"
                    " max conns %zu, %zu methods\n",
                    info.server.c_str(), info.shards,
                    info.queueCapacity, info.maxConnections,
                    info.methods.size());

        // A shared problem instance for every call below.
        Rng rng(2024);
        Graph g = gen::connectedGnp(10, 0.4, rng);
        json::Value graph_json = service::graphToJson(g);
        std::printf("Problem graph: %s\n", g.summary().c_str());

        // 1. evaluate — a batch of landscape points in one request.
        service::EvaluateRequest eval_req;
        eval_req.graph = g;
        eval_req.points = randomParameterSets(1, 8, rng);
        service::EvaluateResult eval = client.evaluate(eval_req);
        double best = eval.values[0];
        for (double v : eval.values)
            best = std::max(best, v);
        service::RouteInfo route;
        if (client.lastRoute(route))
            std::printf("evaluate : %zu points, best <H_c> %.4f"
                        " (shard %d, queued %.2f ms)\n",
                        eval.values.size(), best, route.shard,
                        route.queueMs);
        else
            std::printf("evaluate : %zu points, best <H_c> %.4f\n",
                        eval.values.size(), best);

        // 2. reduce — SA distillation with a pinned seed.
        service::ReduceRequest red_req;
        red_req.graph = g;
        red_req.seed = 7;
        service::ReduceResult red = client.reduce(red_req);
        std::printf("reduce   : %d -> %d nodes (AND ratio %.3f)\n",
                    g.numNodes(), red.graph.numNodes(), red.andRatio);

        // 3. optimize — multi-restart search on the ideal backend.
        service::OptimizeRequest opt_req;
        opt_req.graph = g;
        opt_req.restarts = 2;
        opt_req.maxEvaluations = 40;
        opt_req.seed = 3;
        service::OptimizeResult opt = client.optimize(opt_req);
        std::printf("optimize : <H_c> %.4f after %d evaluations (%s)\n",
                    opt.energy, opt.evaluations, opt.backend.c_str());

        // 4. pipeline — one full Red-QAOA run under device noise.
        service::PipelineRequest pipe_req;
        pipe_req.graph = g;
        json::Value pipe_opts = json::Value::object();
        pipe_opts["noise"] = "ibmq_kolkata";
        pipe_opts["restarts"] = 2;
        pipe_opts["search_evaluations"] = 20;
        pipe_opts["refine_evaluations"] = 8;
        pipe_opts["trajectories"] = 4;
        pipe_req.options = std::move(pipe_opts);
        pipe_req.rngSeed = 7;
        json::Value pipe = client.pipeline(pipe_req);
        std::printf("pipeline : approx ratio %.4f (searched on %.0f"
                    " qubits)\n",
                    pipe.find("approx_ratio")->asNumber(),
                    pipe.find("reduced_nodes")->asNumber());

        // 5. fleet — a miniature graphs x noise x depth grid.
        json::Value fleet_params = json::Value::object();
        json::Value graphs = json::Value::array();
        for (int i = 0; i < 2; ++i) {
            json::Value entry = json::Value::object();
            char gname[8];
            std::snprintf(gname, sizeof gname, "g%d", i);
            entry["name"] = gname;
            entry["graph"] =
                service::graphToJson(gen::connectedGnp(8, 0.4, rng));
            graphs.push(std::move(entry));
        }
        fleet_params["graphs"] = std::move(graphs);
        json::Value noises = json::Value::array();
        noises.push(json::Value("ibmq_kolkata"));
        fleet_params["noises"] = std::move(noises);
        json::Value depths = json::Value::array();
        depths.push(json::Value(1));
        fleet_params["depths"] = std::move(depths);
        json::Value fleet_opts = json::Value::object();
        fleet_opts["restarts"] = 1;
        fleet_opts["search_evaluations"] = 8;
        fleet_opts["refine_evaluations"] = 4;
        fleet_opts["trajectories"] = 2;
        fleet_params["options"] = std::move(fleet_opts);
        json::Value fleet = client.call("fleet", std::move(fleet_params));
        std::printf("fleet    : %zu runs, schema v%.0f\n",
                    fleet.find("runs")->size(),
                    fleet.find("schema_version")->asNumber());

        // 6. stats — aggregate engine, per-shard engines, and server
        // traffic share the wire.
        json::Value stats = client.stats();
        const json::Value *engine = stats.find("engine");
        const json::Value *server = stats.find("server");
        const json::Value *shards = stats.find("shards");
        std::printf("stats    : %.0f requests served across %zu"
                    " shard(s), %.0f graphs cached, memo hit rate"
                    " %.3f, p99 %.2f ms\n",
                    server->find("served")->asNumber(),
                    shards ? shards->size() : 1,
                    engine->find("graphs")->asNumber(),
                    engine->find("memo_hit_rate")->asNumber(),
                    server->find("latency")->find("p99_ms")->asNumber());

        // 7. health — the inline liveness probe (works even when the
        // admission queues are full, which is the whole point).
        json::Value health = client.call("health");
        std::printf("health   : %s, pid %.0f, %.0f in flight, up"
                    " %.1f s\n",
                    health.find("status")->asString().c_str(),
                    health.find("pid")->asNumber(),
                    health.find("in_flight")->asNumber(),
                    health.find("uptime_seconds")->asNumber());

        if (shutdown) {
            client.shutdown();
            std::printf("shutdown : acknowledged\n");
        }
        std::printf("All service calls round-tripped.\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "service client failed: %s\n", e.what());
        return 1;
    }
}
