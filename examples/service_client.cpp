/**
 * @file
 * Service-client tour: drives every method of a running redqaoa_serve
 * TCP endpoint through the C++ ServiceClient — evaluate a small
 * landscape batch, distill a graph, optimize parameters, run one full
 * pipeline, launch a miniature fleet, read the traffic counters, and
 * (optionally) ask the server to shut down.
 *
 * Usage: ./example_service_client <port> [--shutdown]
 *
 * Start the server first:   ./redqaoa_serve --tcp --port-file port.txt
 * then:                     ./example_service_client "$(cat port.txt)"
 *
 * Exit codes: 0 when every call round-trips, 1 on any failure (CI's
 * service smoke job gates on this).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/generators.hpp"
#include "landscape/landscape.hpp"
#include "service/client.hpp"

using namespace redqaoa;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: example_service_client <port> [--shutdown]\n");
        return 1;
    }
    int port = std::atoi(argv[1]);
    bool shutdown = argc > 2 && std::string(argv[2]) == "--shutdown";

    try {
        service::ServiceClient client = service::ServiceClient::connect(port);
        std::printf("Connected to redqaoa_serve on 127.0.0.1:%d\n", port);

        // A shared problem instance for every call below.
        Rng rng(2024);
        Graph g = gen::connectedGnp(10, 0.4, rng);
        json::Value graph_json = service::graphToJson(g);
        std::printf("Problem graph: %s\n", g.summary().c_str());

        // 1. evaluate — a batch of landscape points in one request.
        std::vector<QaoaParams> points = randomParameterSets(1, 8, rng);
        std::vector<double> values = client.evaluate(g, points);
        double best = values[0];
        for (double v : values)
            best = std::max(best, v);
        std::printf("evaluate : %zu points, best <H_c> %.4f\n",
                    values.size(), best);

        // 2. reduce — SA distillation with a pinned seed.
        json::Value reduce_params = json::Value::object();
        reduce_params["graph"] = graph_json;
        reduce_params["seed"] = 7;
        json::Value red = client.call("reduce", std::move(reduce_params));
        std::printf("reduce   : %d -> %.0f nodes (AND ratio %.3f)\n",
                    g.numNodes(),
                    red.find("graph")->find("nodes")->asNumber(),
                    red.find("and_ratio")->asNumber());

        // 3. optimize — multi-restart search on the ideal backend.
        json::Value opt_params = json::Value::object();
        opt_params["graph"] = graph_json;
        opt_params["restarts"] = 2;
        opt_params["max_evaluations"] = 40;
        opt_params["seed"] = 3;
        json::Value opt = client.call("optimize", std::move(opt_params));
        std::printf("optimize : <H_c> %.4f after %.0f evaluations (%s)\n",
                    opt.find("energy")->asNumber(),
                    opt.find("evaluations")->asNumber(),
                    opt.find("backend")->asString().c_str());

        // 4. pipeline — one full Red-QAOA run under device noise.
        json::Value pipe_params = json::Value::object();
        pipe_params["graph"] = graph_json;
        json::Value pipe_opts = json::Value::object();
        pipe_opts["noise"] = "ibmq_kolkata";
        pipe_opts["restarts"] = 2;
        pipe_opts["search_evaluations"] = 20;
        pipe_opts["refine_evaluations"] = 8;
        pipe_opts["trajectories"] = 4;
        pipe_params["options"] = std::move(pipe_opts);
        pipe_params["rng_seed"] = 7;
        json::Value pipe = client.call("pipeline", std::move(pipe_params));
        std::printf("pipeline : approx ratio %.4f (searched on %.0f"
                    " qubits)\n",
                    pipe.find("approx_ratio")->asNumber(),
                    pipe.find("reduced_nodes")->asNumber());

        // 5. fleet — a miniature graphs x noise x depth grid.
        json::Value fleet_params = json::Value::object();
        json::Value graphs = json::Value::array();
        for (int i = 0; i < 2; ++i) {
            json::Value entry = json::Value::object();
            char gname[8];
            std::snprintf(gname, sizeof gname, "g%d", i);
            entry["name"] = gname;
            entry["graph"] =
                service::graphToJson(gen::connectedGnp(8, 0.4, rng));
            graphs.push(std::move(entry));
        }
        fleet_params["graphs"] = std::move(graphs);
        json::Value noises = json::Value::array();
        noises.push(json::Value("ibmq_kolkata"));
        fleet_params["noises"] = std::move(noises);
        json::Value depths = json::Value::array();
        depths.push(json::Value(1));
        fleet_params["depths"] = std::move(depths);
        json::Value fleet_opts = json::Value::object();
        fleet_opts["restarts"] = 1;
        fleet_opts["search_evaluations"] = 8;
        fleet_opts["refine_evaluations"] = 4;
        fleet_opts["trajectories"] = 2;
        fleet_params["options"] = std::move(fleet_opts);
        json::Value fleet = client.call("fleet", std::move(fleet_params));
        std::printf("fleet    : %zu runs, schema v%.0f\n",
                    fleet.find("runs")->size(),
                    fleet.find("schema_version")->asNumber());

        // 6. stats — engine and server traffic share the wire.
        json::Value stats = client.stats();
        const json::Value *engine = stats.find("engine");
        const json::Value *server = stats.find("server");
        std::printf("stats    : %.0f requests served, %.0f graphs"
                    " cached, memo hit rate %.3f, p99 %.2f ms\n",
                    server->find("served")->asNumber(),
                    engine->find("graphs")->asNumber(),
                    engine->find("memo_hit_rate")->asNumber(),
                    server->find("latency")->find("p99_ms")->asNumber());

        if (shutdown) {
            client.shutdown();
            std::printf("shutdown : acknowledged\n");
        }
        std::printf("All service calls round-tripped.\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "service client failed: %s\n", e.what());
        return 1;
    }
}
