/**
 * @file
 * Domain example 5: composing Red-QAOA with INTERP layer-growing
 * (the "complementary warm-start techniques" of the paper's §7.2).
 *
 * Deep QAOA (p = 3) parameters are grown layer by layer on the CHEAP
 * distilled graph, then transferred to the original graph — combining
 * Red-QAOA's noise/cost reduction with INTERP's initialization quality.
 * Compares against growing the schedule directly on the original graph.
 *
 * Usage: ./deep_circuit_warmstart
 */

#include <cstdio>

#include "core/layerwise.hpp"
#include "core/red_qaoa.hpp"
#include "graph/generators.hpp"

using namespace redqaoa;

int
main()
{
    Rng rng(41);
    Graph g = gen::connectedGnp(12, 0.35, rng);
    std::printf("Problem: %s | target depth p = 3\n", g.summary().c_str());

    RedQaoaReducer reducer;
    ReductionResult red = reducer.reduce(g, rng);
    std::printf("Distilled: %s\n\n", red.reduced.graph.summary().c_str());

    LayerwiseOptions opts;
    opts.targetLayers = 3;
    opts.evaluationsPerDepth = 70;

    // One engine serves both growth runs and the scoring evaluation;
    // the Auto spec resolves to the exact statevector at this size.
    EvalEngine engine;
    EvalSpec spec = EvalSpec::ideal(1);

    // Plan A: grow the schedule on the distilled graph, transfer, score
    // (scoring resolves the backend for the FINAL depth, not p = 1).
    Rng r1(7);
    LayerwiseResult on_reduced =
        optimizeLayerwise(engine, red.reduced.graph, spec, opts, r1);
    double transferred =
        engine.evaluator(g, spec.withLayers(opts.targetLayers))
            ->expectation(on_reduced.params);

    // Plan B: grow directly on the original graph (the expensive path).
    Rng r2(7);
    LayerwiseResult on_original =
        optimizeLayerwise(engine, g, spec, opts, r2);

    Rng cut_rng(9);
    double maxcut = maxCutBest(g, cut_rng);

    std::printf("%-34s %-12s %-10s\n", "", "<H_c> on G", "ratio");
    std::printf("%-34s %-12.3f %-10.3f\n",
                "Red-QAOA + INTERP (transferred)", transferred,
                transferred / maxcut);
    std::printf("%-34s %-12.3f %-10.3f\n", "direct INTERP on G",
                on_original.energy, on_original.energy / maxcut);
    std::printf("\nper-depth energies on the search graph:\n");
    std::printf("  reduced:  ");
    for (double e : on_reduced.perDepthEnergy)
        std::printf("%.3f  ", e);
    std::printf("\n  original: ");
    for (double e : on_original.perDepthEnergy)
        std::printf("%.3f  ", e);
    std::printf("\n\nThe transferred schedule recovers most of the direct"
                " run's quality while every search evaluation executed on"
                " a %d-qubit circuit instead of %d.\n",
                red.reduced.graph.numNodes(), g.numNodes());
    return 0;
}
