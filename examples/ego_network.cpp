/**
 * @file
 * Domain example 2: social/collaboration networks (the IMDb workload).
 *
 * Ego networks are dense, so they stress Red-QAOA exactly where §6.3
 * says it is hardest: removing one node costs many edges. This example
 * reduces small and medium ego networks, shows the small-vs-medium
 * effect, and runs one end-to-end optimization on a medium instance
 * using the light-cone evaluator for scoring.
 *
 * Usage: ./ego_network
 */

#include <cstdio>

#include "core/pipeline.hpp"
#include "graph/datasets.hpp"
#include "quantum/evaluator.hpp"

using namespace redqaoa;

namespace {

void
reduceBatch(const std::vector<Graph> &batch, const char *label, Rng &rng)
{
    RedQaoaReducer reducer;
    double nodes = 0.0, edges = 0.0;
    for (const Graph &g : batch) {
        ReductionResult red = reducer.reduce(g, rng);
        nodes += red.nodeReduction;
        edges += red.edgeReduction;
    }
    double n = static_cast<double>(batch.size());
    std::printf("%-14s %3zu graphs   node reduction %5.1f%%   "
                "edge reduction %5.1f%%\n",
                label, batch.size(), 100.0 * nodes / n, 100.0 * edges / n);
}

} // namespace

int
main()
{
    Dataset imdb = datasets::makeImdb(7003, 300);
    auto small = imdb.filterByNodes(7, 10);
    auto medium = imdb.filterByNodes(11, 20);
    if (small.size() > 15)
        small.resize(15);
    if (medium.size() > 15)
        medium.resize(15);

    std::printf("IMDb-style ego networks (dense collaboration graphs)\n\n");
    Rng rng(5);
    reduceBatch(small, "small (<=10)", rng);
    reduceBatch(medium, "medium (<=20)", rng);
    std::printf("\n(§6.3: medium graphs reduce better than small dense "
                "ones — 15%%->25%% nodes, 28%%->35%% edges)\n\n");

    // End-to-end on one medium ego network.
    const Graph &target = medium.front();
    std::printf("End-to-end on a medium instance: %s\n",
                target.summary().c_str());

    PipelineOptions opts;
    opts.layers = 1;
    opts.noise = noise::ibmKolkata();
    opts.restarts = 3;
    opts.searchEvaluations = 40;
    opts.refineEvaluations = 15;
    opts.trajectories = 12;
    RedQaoaPipeline pipeline(opts);
    Rng run_rng(9);
    PipelineResult res = pipeline.run(target, run_rng);

    std::printf("  distilled to %d/%d nodes (AND ratio %.3f)\n",
                res.reduction.reduced.graph.numNodes(), target.numNodes(),
                res.reduction.andRatio);
    std::printf("  ideal energy %.3f of MaxCut %d -> ratio %.3f\n",
                res.idealEnergy, res.maxCut, res.approxRatio);
    return 0;
}
