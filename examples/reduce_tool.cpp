/**
 * @file
 * Command-line distillation tool: load a MaxCut instance from an
 * edge-list file, run the Red-QAOA reducer, report the statistics, and
 * optionally write the distilled graph back out.
 *
 * Usage:
 *   ./reduce_tool                      # demo on a built-in graph
 *   ./reduce_tool in.graph             # reduce a file, print stats
 *   ./reduce_tool in.graph out.graph   # ... and save the result
 *   ./reduce_tool in.graph out.graph 0.8   # custom AND-ratio threshold
 */

#include <cstdio>
#include <cstdlib>

#include "core/red_qaoa.hpp"
#include "engine/eval_engine.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "landscape/landscape.hpp"

using namespace redqaoa;

int
main(int argc, char **argv)
{
    Graph g;
    if (argc > 1) {
        try {
            g = io::loadGraph(argv[1]);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    } else {
        Rng demo_rng(2024);
        g = gen::connectedGnp(12, 0.35, demo_rng);
        std::printf("(no input file: using a demo 12-node random graph)\n");
    }
    if (!g.isConnected()) {
        std::fprintf(stderr,
                     "error: input graph must be connected "
                     "(QAOA instances are)\n");
        return 1;
    }

    RedQaoaOptions opts;
    if (argc > 3)
        opts.andRatioThreshold = std::atof(argv[3]);

    Rng rng(7);
    RedQaoaReducer reducer(opts);
    ReductionResult res = reducer.reduce(g, rng);

    std::printf("input     : %s\n", g.summary().c_str());
    std::printf("distilled : %s\n", res.reduced.graph.summary().c_str());
    std::printf("AND ratio : %.3f (threshold %.2f)\n", res.andRatio,
                opts.andRatioThreshold);
    std::printf("reduction : %.0f%% nodes, %.0f%% edges\n",
                100.0 * res.nodeReduction, 100.0 * res.edgeReduction);
    std::printf("annealing : %d runs (binary search + post-selection)\n",
                res.annealerRuns);
    std::printf("node map  : distilled -> original:");
    for (Node v : res.reduced.toOriginal)
        std::printf(" %d", v);
    std::printf("\n");

    // Landscape fidelity report. The engine's Auto spec picks the
    // exact statevector on small inputs and the closed form above the
    // cutoff, so the check works at any instance size.
    {
        EvalEngine eng;
        EvalSpec spec = EvalSpec::ideal(1);
        Landscape lb = Landscape::evaluate(eng, g, spec, 16);
        Landscape lr = Landscape::evaluate(eng, res.reduced.graph, spec, 16);
        std::printf("landscape : p=1 normalized MSE %.4f (target <= 0.02,"
                    " %s backend)\n",
                    landscapeMse(lb, lr),
                    eng.evaluator(g, spec)->describe().c_str());
    }

    if (argc > 2) {
        try {
            io::saveGraph(argv[2], res.reduced.graph);
            std::printf("saved     : %s\n", argv[2]);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    return 0;
}
