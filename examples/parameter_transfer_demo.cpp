/**
 * @file
 * Domain example 4: Red-QAOA versus classic parameter transfer.
 *
 * Prior work transfers optimal parameters between random regular graphs.
 * This demo rewires a regular graph (making it irregular, per the §5.6
 * protocol), then compares two surrogates for its landscape: a random
 * regular donor of matching degree, and the Red-QAOA distilled graph.
 *
 * Usage: ./parameter_transfer_demo
 */

#include <cstdio>

#include "core/red_qaoa.hpp"
#include "core/transfer.hpp"
#include "engine/eval_engine.hpp"
#include "graph/generators.hpp"
#include "landscape/landscape.hpp"

using namespace redqaoa;

int
main()
{
    Rng rng(23);
    EvalEngine engine;
    const EvalSpec spec = EvalSpec::ideal(1);

    std::printf("%-26s %-12s %-14s %-12s\n", "graph",
                "transfer MSE", "Red-QAOA MSE", "winner");

    for (int degree : {3, 4}) {
        // Base: random regular graph, then rewire 10% of edges.
        Graph base = gen::randomRegular(16, degree, rng);
        Graph irregular = gen::rewireEdges(base, 0.10, rng);

        // Surrogate A: Red-QAOA reduction of the irregular graph.
        RedQaoaReducer reducer;
        ReductionResult red = reducer.reduce(irregular, rng);

        // Surrogate B: random regular donor with the same node count as
        // the Red-QAOA graph and the base graph's degree.
        Graph donor = transferDonor(red.reduced.graph.numNodes(),
                                    base.averageDegree(), rng);

        // Compare both surrogate landscapes to the irregular original.
        Landscape orig = Landscape::evaluate(engine, irregular, spec, 20);
        Landscape red_ls =
            Landscape::evaluate(engine, red.reduced.graph, spec, 20);
        Landscape donor_ls = Landscape::evaluate(engine, donor, spec, 20);

        double mse_transfer = landscapeMse(orig, donor_ls);
        double mse_red = landscapeMse(orig, red_ls);

        char label[64];
        std::snprintf(label, sizeof label, "%d-regular-16 (10%% rewired)",
                      degree);
        std::printf("%-26s %-12.4f %-14.4f %s\n", label, mse_transfer,
                    mse_red,
                    mse_red <= mse_transfer ? "Red-QAOA" : "transfer");
    }

    std::printf("\nFig 21's conclusion: transfer works on (near-)regular"
                " graphs but degrades with irregularity, while Red-QAOA"
                " tracks the target landscape directly.\n");
    return 0;
}
