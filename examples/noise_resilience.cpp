/**
 * @file
 * Domain example 3: noise resilience in depth.
 *
 * Reproduces the §6.1 story on one graph: compare the ideal landscape
 * against (a) the noisy landscape of the original circuit and (b) the
 * noisy landscape of the Red-QAOA distilled circuit, across several
 * device noise presets. Prints the noisy-vs-ideal MSE for each — the
 * distilled circuit should sit closer to the ideal everywhere.
 *
 * Usage: ./noise_resilience
 */

#include <cstdio>

#include "core/red_qaoa.hpp"
#include "engine/eval_engine.hpp"
#include "graph/generators.hpp"
#include "landscape/landscape.hpp"

using namespace redqaoa;

namespace {

/** Noisy-vs-ideal MSE for one graph on one backend, 16x16 p=1 grid. */
double
noisyMse(EvalEngine &engine, const Graph &g, const Landscape &ideal_base,
         const NoiseModel &nm)
{
    EvalSpec spec =
        EvalSpec::noisy(noise::transpiled(nm, g.numNodes()), /*p=*/1,
                        /*trajectories=*/8, /*seed=*/31, /*shots=*/2048);
    Landscape noisy_ls = Landscape::evaluate(engine, g, spec, 16);
    return landscapeMse(ideal_base.values(), noisy_ls.values());
}

} // namespace

int
main()
{
    Rng rng(17);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    std::printf("Test graph: %s\n", g.summary().c_str());

    RedQaoaReducer reducer;
    ReductionResult red = reducer.reduce(g, rng);
    std::printf("Distilled:  %s\n\n", red.reduced.graph.summary().c_str());

    // One engine serves every landscape below; the ideal reference of
    // the ORIGINAL graph (16x16 grid) comes from its Auto backend.
    EvalEngine engine;
    Landscape ideal = Landscape::evaluate(engine, g, EvalSpec::ideal(1), 16);

    std::printf("%-18s %-16s %-16s %-10s\n", "backend",
                "baseline MSE", "Red-QAOA MSE", "better?");
    for (const NoiseModel &nm :
         {noise::ibmKolkata(), noise::ibmCairo(), noise::ibmToronto(),
          noise::ibmMelbourne(), noise::rigettiAspenM3()}) {
        double base_mse = noisyMse(engine, g, ideal, nm);
        double red_mse = noisyMse(engine, red.reduced.graph, ideal, nm);
        std::printf("%-18s %-16.4f %-16.4f %s\n", nm.name.c_str(),
                    base_mse, red_mse, red_mse < base_mse ? "yes" : "no");
    }
    std::printf("\nBoth columns compare noisy landscapes against the ideal"
                " landscape of the original graph (the §5.1.1 noisy-MSE"
                " protocol).\n");
    return 0;
}
