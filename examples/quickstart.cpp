/**
 * @file
 * Quickstart: the 60-second tour of Red-QAOA.
 *
 * Builds a random MaxCut instance, distills it with the simulated-
 * annealing reducer, runs the full noisy optimization pipeline, and
 * compares the outcome against the plain-QAOA baseline. Both runs
 * share one EvalEngine — the supported entry point for everything
 * evaluation-shaped — so scoring artifacts are built once and the
 * engine's traffic counters summarize what the tour cost.
 *
 * Usage: ./quickstart
 */

#include <cstdio>
#include <memory>

#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"

using namespace redqaoa;

int
main()
{
    // Noisy evaluation, landscape grids, and SA candidate checks fan
    // out over a thread pool; REDQAOA_THREADS=1 forces serial runs.
    std::printf("Threads: %d (set REDQAOA_THREADS to override)\n",
                ThreadPool::globalThreadCount());

    // 1. A MaxCut problem: a random 10-node graph.
    Rng rng(2024);
    Graph g = gen::connectedGnp(10, 0.4, rng);
    std::printf("Problem graph: %s\n", g.summary().c_str());

    // 2. Distill it: find a smaller graph with matching average node
    //    degree (the Red-QAOA equivalence criterion).
    RedQaoaReducer reducer;
    ReductionResult red = reducer.reduce(g, rng);
    std::printf("Distilled:     %s  (AND ratio %.3f, -%.0f%% nodes, "
                "-%.0f%% edges)\n",
                red.reduced.graph.summary().c_str(), red.andRatio,
                100.0 * red.nodeReduction, 100.0 * red.edgeReduction);

    // 3. Run the full pipeline under a realistic device noise model:
    //    parameter search happens on the distilled circuit, the final
    //    refinement on the original. One engine serves both flows.
    auto engine = std::make_shared<EvalEngine>();
    PipelineOptions opts;
    opts.layers = 1;
    opts.noise = noise::ibmKolkata();
    opts.restarts = 4;
    opts.searchEvaluations = 50;
    opts.refineEvaluations = 20;
    RedQaoaPipeline pipeline(opts, engine);

    Rng red_rng(7);
    PipelineResult ours = pipeline.run(g, red_rng);
    Rng base_rng(7);
    PipelineResult baseline = pipeline.runBaseline(g, base_rng);

    std::printf("\n%-22s %-14s %-14s\n", "", "Red-QAOA", "Baseline");
    std::printf("%-22s %-14.4f %-14.4f\n", "ideal energy <H_c>",
                ours.idealEnergy, baseline.idealEnergy);
    std::printf("%-22s %-14.4f %-14.4f\n", "approximation ratio",
                ours.approxRatio, baseline.approxRatio);
    std::printf("%-22s %-14d %-14d\n", "search circuit qubits",
                ours.reduction.reduced.graph.numNodes(),
                baseline.reduction.reduced.graph.numNodes());
    std::printf("\nMaxCut ground truth: %d\n", ours.maxCut);
    std::printf("Gamma* = %.4f, Beta* = %.4f\n", ours.params.gamma[0],
                ours.params.beta[0]);

    EngineStats stats = engine->stats();
    std::printf("\nEngine: %llu graphs cached, %llu shared-evaluator"
                " hits, %llu artifact builds\n",
                static_cast<unsigned long long>(stats.artifacts.graphs),
                static_cast<unsigned long long>(stats.evaluatorHits),
                static_cast<unsigned long long>(stats.artifacts.misses));
    return 0;
}
