#!/usr/bin/env python3
"""Diff two redqaoa_bench JSON result files and flag metric drift.

Usage:
    compare_bench.py BASE.json NEW.json [--tolerance R] [--time-tolerance R]
                     [--kernel-figures REGEX] [--kernel-time-tolerance R]
                     [--annotate] [--strict]

Compares every figure present in both documents:
  * scalar metrics: relative delta beyond --tolerance is flagged;
    metrics whose name ends in `_seconds` / `_ms` (timings) or
    `_per_second` (throughput rates) are compared against the looser
    --time-tolerance instead (reported as drift, not value deltas);
  * series: length changes are flagged, element values are compared at
    the same tolerance and the worst relative delta is reported
    (`_seconds` / `_ms` series are timings, compared at
    --time-tolerance);
  * wall_seconds / total_wall_seconds: compared against
    --time-tolerance (timings are noisy on shared CI runners).
Figures or metrics present on only one side are reported as added /
removed (informational, never a failure).

--kernel-figures REGEX enables the kernel regression check: for
figures matching the regex, `_seconds` metrics and wall_seconds are
additionally compared against --kernel-time-tolerance (default 0.25)
and regressions (slowdowns only) are reported in a dedicated section
(`_per_second` metrics are checked the same way with the direction
inverted: only throughput DROPS are regressions);
with --annotate they are also emitted as GitHub workflow annotations
(`::error` when they gate the exit status, `::warning` otherwise).

Exit status: --fail-on-kernel-regression exits 1 when the kernel
check found regressions (CI's blocking perf gate; the
`override-perf-regression` PR label skips the gate step entirely),
and --strict exits 1 on flagged value deltas (not timing drift).
Without either flag the report is informational only. Stdlib only, no
third-party imports.
"""

import argparse
import json
import re
import sys

EPS = 1e-12


def rel_delta(base, new):
    """Relative delta |new - base| / max(|base|, |new|, eps)."""
    denom = max(abs(base), abs(new), EPS)
    return abs(new - base) / denom


def fmt_value(v):
    """One value for display; non-finite metrics arrive as None."""
    return "null" if v is None else f"{v:.6g}"


def fmt_delta(base, new):
    return f"{fmt_value(base)} -> {fmt_value(new)}" \
           f" ({100.0 * rel_delta(base, new):+.1f}%)"


def index_figures(doc):
    return {f["name"]: f for f in doc.get("figures", [])}


def compare_metrics(name, base_fig, new_fig, tolerance, time_tolerance,
                    flags, time_drift, infos):
    base_metrics = base_fig.get("metrics", {})
    new_metrics = new_fig.get("metrics", {})
    for key in sorted(set(base_metrics) | set(new_metrics)):
        if key not in base_metrics:
            infos.append(
                f"{name}.{key}: added (={fmt_value(new_metrics[key])})")
            continue
        if key not in new_metrics:
            infos.append(f"{name}.{key}: removed")
            continue
        b, n = base_metrics[key], new_metrics[key]
        if b is None or n is None:
            if b != n:
                flags.append(f"{name}.{key}: {b} -> {n} (non-finite)")
            continue
        if key.endswith("_seconds") or key.endswith("_ms") \
                or key.endswith("_per_second"):
            # Timing / throughput metric: noisy by nature, report as
            # drift only.
            if rel_delta(b, n) > time_tolerance:
                time_drift.append(f"{name}.{key}: {fmt_delta(b, n)}")
            continue
        if rel_delta(b, n) > tolerance:
            flags.append(f"{name}.{key}: {fmt_delta(b, n)}")


def check_kernel_regressions(pattern, base_figs, new_figs, tolerance,
                             min_seconds):
    """Slowdowns beyond tolerance in `_seconds` metrics / wall_seconds
    of figures matching the kernel regex, and throughput drops beyond
    tolerance in their `_per_second` metrics (the EvalEngine figure
    reports rates). Timings under @p min_seconds are below the
    scheduling-noise floor and skipped, as are rates whose implied
    per-unit time is under the floor."""
    regressions = []
    matcher = re.compile(pattern)
    for name in sorted(set(base_figs) & set(new_figs)):
        if not matcher.search(name):
            continue
        bf, nf = base_figs[name], new_figs[name]
        base_metrics = bf.get("metrics", {})
        new_metrics = nf.get("metrics", {})
        common = sorted(set(base_metrics) & set(new_metrics))
        timed = [(f"{name}.{k}", base_metrics[k], new_metrics[k])
                 for k in common if k.endswith("_seconds")]
        timed.append((f"{name}.wall_seconds", bf.get("wall_seconds"),
                      nf.get("wall_seconds")))
        for label, b, n in timed:
            if b is None or n is None or b <= min_seconds:
                continue
            slowdown = (n - b) / b
            if slowdown > tolerance:
                regressions.append(
                    f"{label}: {fmt_value(b)}s -> {fmt_value(n)}s"
                    f" (+{100.0 * slowdown:.0f}% slower)")
        rates = [(f"{name}.{k}", base_metrics[k], new_metrics[k])
                 for k in common if k.endswith("_per_second")]
        for label, b, n in rates:
            if b is None or n is None or b <= 0 or n <= 0:
                continue
            if 1.0 / b <= min_seconds:
                continue
            drop = (b - n) / b
            if drop > tolerance:
                regressions.append(
                    f"{label}: {fmt_value(b)}/s -> {fmt_value(n)}/s"
                    f" (-{100.0 * drop:.0f}% throughput)")
    return regressions


def compare_series(name, base_fig, new_fig, tolerance, time_tolerance,
                   flags, time_drift, infos):
    base_series = base_fig.get("series", {})
    new_series = new_fig.get("series", {})
    for key in sorted(set(base_series) | set(new_series)):
        if key not in base_series:
            infos.append(f"{name}.series.{key}: added")
            continue
        if key not in new_series:
            infos.append(f"{name}.series.{key}: removed")
            continue
        b, n = base_series[key], new_series[key]
        if len(b) != len(n):
            flags.append(
                f"{name}.series.{key}: length {len(b)} -> {len(n)}")
            continue
        # Timing series (e.g. fig18 preprocess_seconds, the service
        # sweep's p50/p99 latencies) drift like wall-clock, not like
        # measurements.
        is_timing = key.endswith("_seconds") or key.endswith("_ms") \
            or key.endswith("_per_second")
        out = time_drift if is_timing else flags
        limit = time_tolerance if is_timing else tolerance
        worst = 0.0
        worst_i = -1
        for i, (bv, nv) in enumerate(zip(b, n)):
            if bv is None or nv is None:
                if bv != nv:
                    flags.append(
                        f"{name}.series.{key}[{i}]: {bv} -> {nv}"
                        " (non-finite)")
                continue
            d = rel_delta(bv, nv)
            if d > worst:
                worst, worst_i = d, i
        if worst > limit:
            out.append(
                f"{name}.series.{key}[{worst_i}]: "
                f"{fmt_delta(b[worst_i], n[worst_i])}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("base", help="baseline bench JSON")
    parser.add_argument("new", help="candidate bench JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance for metric/series"
                             " values (default 0.25)")
    parser.add_argument("--time-tolerance", type=float, default=1.0,
                        help="relative tolerance for wall-clock drift"
                             " (default 1.0, i.e. 2x)")
    parser.add_argument("--kernel-figures", default=None,
                        help="regex of figures whose `_seconds` metrics"
                             " and wall-clock get the kernel regression"
                             " check")
    parser.add_argument("--kernel-time-tolerance", type=float,
                        default=0.25,
                        help="relative slowdown flagged by the kernel"
                             " regression check (default 0.25)")
    parser.add_argument("--kernel-min-seconds", type=float,
                        default=2e-5,
                        help="kernel timings below this are under the"
                             " measurement noise floor and skipped"
                             " (default 2e-5)")
    parser.add_argument("--annotate", action="store_true",
                        help="emit kernel regressions as GitHub"
                             " workflow annotations")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when value deltas are flagged")
    parser.add_argument("--fail-on-kernel-regression",
                        action="store_true",
                        help="exit 1 when the kernel regression check"
                             " flagged anything (the CI blocking gate)")
    args = parser.parse_args(argv)

    with open(args.base) as fh:
        base = json.load(fh)
    with open(args.new) as fh:
        new = json.load(fh)

    for doc, label in ((base, args.base), (new, args.new)):
        if doc.get("schema_version") != 1:
            print(f"warning: {label} has schema_version"
                  f" {doc.get('schema_version')!r}, expected 1")

    base_quick = base.get("metadata", {}).get("quick")
    new_quick = new.get("metadata", {}).get("quick")
    if base_quick != new_quick:
        print(f"warning: comparing quick={base_quick} against"
              f" quick={new_quick}; value deltas are expected")

    base_figs = index_figures(base)
    new_figs = index_figures(new)

    flags = []      # value drift beyond tolerance
    time_drift = [] # wall-clock drift (informational)
    infos = []      # added/removed entries

    for name in sorted(set(base_figs) | set(new_figs)):
        if name not in base_figs:
            infos.append(f"{name}: figure added")
            continue
        if name not in new_figs:
            infos.append(f"{name}: figure removed")
            continue
        bf, nf = base_figs[name], new_figs[name]
        compare_metrics(name, bf, nf, args.tolerance,
                        args.time_tolerance, flags, time_drift, infos)
        compare_series(name, bf, nf, args.tolerance,
                       args.time_tolerance, flags, time_drift, infos)
        bt, nt = bf.get("wall_seconds"), nf.get("wall_seconds")
        if (bt is not None and nt is not None
                and rel_delta(bt, nt) > args.time_tolerance):
            time_drift.append(f"{name}.wall_seconds: {fmt_delta(bt, nt)}")

    bt = base.get("metadata", {}).get("total_wall_seconds")
    nt = new.get("metadata", {}).get("total_wall_seconds")
    if (bt is not None and nt is not None
            and rel_delta(bt, nt) > args.time_tolerance):
        time_drift.append(f"metadata.total_wall_seconds:"
                          f" {fmt_delta(bt, nt)}")

    kernel_regressions = []
    if args.kernel_figures:
        kernel_regressions = check_kernel_regressions(
            args.kernel_figures, base_figs, new_figs,
            args.kernel_time_tolerance, args.kernel_min_seconds)

    print(f"compared {len(set(base_figs) & set(new_figs))} common"
          f" figures ({args.base} vs {args.new},"
          f" tolerance {args.tolerance:g})")
    for section, entries in (("value deltas beyond tolerance", flags),
                             ("wall-clock drift", time_drift),
                             (f"kernel regressions beyond"
                              f" {100 * args.kernel_time_tolerance:.0f}%",
                              kernel_regressions),
                             ("added/removed", infos)):
        if entries:
            print(f"\n{section} ({len(entries)}):")
            for e in entries:
                print(f"  {e}")
    if not flags and not time_drift and not infos \
            and not kernel_regressions:
        print("no differences beyond tolerance")

    if args.annotate:
        level = "error" if args.fail_on_kernel_regression else "warning"
        for e in kernel_regressions:
            print(f"::{level} title=bench kernel regression::{e}")

    if args.fail_on_kernel_regression and kernel_regressions:
        return 1
    if args.strict and flags:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
