#!/usr/bin/env bash
# Format gate for CI and local use.
#
# Always enforced (fast, no tooling needed): no tabs, no CRLF, no
# trailing whitespace, newline at EOF — the tree is clean on these and
# stays clean.
#
# clang-format (against the repo .clang-format) runs in advisory mode
# by default: it prints the diff it would apply but does not fail the
# build, because the pre-existing tree has never been normalized with
# clang-format. Set STRICT_CLANG_FORMAT=1 to make it a hard failure
# once a normalization pass has landed.
set -u

cd "$(dirname "$0")/.."

files=$(find src tests bench examples -name '*.cpp' -o -name '*.hpp')
fail=0

for f in $files; do
    if grep -qP '\t' "$f"; then
        echo "error: tab character in $f"
        fail=1
    fi
    if grep -qP '\r' "$f"; then
        echo "error: CRLF line ending in $f"
        fail=1
    fi
    if grep -qP '[ \t]+$' "$f"; then
        echo "error: trailing whitespace in $f"
        fail=1
    fi
    if [ -n "$(tail -c1 "$f")" ]; then
        echo "error: missing newline at end of $f"
        fail=1
    fi
done

if command -v clang-format >/dev/null 2>&1; then
    strict="${STRICT_CLANG_FORMAT:-0}"
    diff_seen=0
    for f in $files; do
        if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
            if [ "$diff_seen" -eq 0 ]; then
                echo "clang-format differences (advisory unless STRICT_CLANG_FORMAT=1):"
                diff_seen=1
            fi
            echo "  $f"
            if [ "$strict" = "1" ]; then
                fail=1
            fi
        fi
    done
    [ "$diff_seen" -eq 0 ] && echo "clang-format: clean"
else
    echo "clang-format not found; skipped style diff (mechanical checks ran)"
fi

if [ "$fail" -ne 0 ]; then
    echo "format check FAILED"
    exit 1
fi
echo "format check passed"
