#!/usr/bin/env bash
# Format gate for CI and local use.
#
# Always enforced (fast, no tooling needed): no tabs, no CRLF, no
# trailing whitespace, newline at EOF — the tree is clean on these and
# stays clean.
#
# clang-format (against the repo .clang-format) prints the files it
# would change; STRICT_CLANG_FORMAT=1 — what CI sets — makes any diff
# a hard failure. Point CLANG_FORMAT at a specific binary to match
# CI's pinned version (clang-format-15); the first of $CLANG_FORMAT,
# clang-format-15, clang-format found on PATH is used.
#
# scripts/*.py get the mechanical checks too, plus a pyflakes pass when
# the tool is installed (CI runners have it; local machines without it
# just skip the lint, never fail on the missing tool).
set -u

cd "$(dirname "$0")/.."

files=$(find src tests bench examples tools -name '*.cpp' -o -name '*.hpp')
py_files=$(find scripts -name '*.py')
fail=0

for f in $files $py_files; do
    if grep -qP '\t' "$f"; then
        echo "error: tab character in $f"
        fail=1
    fi
    if grep -qP '\r' "$f"; then
        echo "error: CRLF line ending in $f"
        fail=1
    fi
    if grep -qP '[ \t]+$' "$f"; then
        echo "error: trailing whitespace in $f"
        fail=1
    fi
    if [ -n "$(tail -c1 "$f")" ]; then
        echo "error: missing newline at end of $f"
        fail=1
    fi
done

cf=""
for candidate in "${CLANG_FORMAT:-}" clang-format-15 clang-format; do
    if [ -n "$candidate" ] && command -v "$candidate" >/dev/null 2>&1; then
        cf="$candidate"
        break
    fi
done

if [ -n "$cf" ]; then
    strict="${STRICT_CLANG_FORMAT:-0}"
    diff_seen=0
    for f in $files; do
        if ! "$cf" --dry-run -Werror "$f" >/dev/null 2>&1; then
            if [ "$diff_seen" -eq 0 ]; then
                echo "$cf differences (advisory unless STRICT_CLANG_FORMAT=1):"
                diff_seen=1
            fi
            echo "  $f"
            if [ "$strict" = "1" ]; then
                fail=1
            fi
        fi
    done
    [ "$diff_seen" -eq 0 ] && echo "clang-format ($cf): clean"
else
    echo "clang-format not found; skipped style diff (mechanical checks ran)"
fi

if [ -n "$py_files" ]; then
    if command -v pyflakes >/dev/null 2>&1; then
        if ! pyflakes $py_files; then
            echo "error: pyflakes found problems"
            fail=1
        else
            echo "pyflakes: clean"
        fi
    elif python3 -c 'import pyflakes' >/dev/null 2>&1; then
        if ! python3 -m pyflakes $py_files; then
            echo "error: pyflakes found problems"
            fail=1
        else
            echo "pyflakes: clean"
        fi
    else
        echo "pyflakes not found; skipped python lint"
    fi
fi

if [ "$fail" -ne 0 ]; then
    echo "format check FAILED"
    exit 1
fi
echo "format check passed"
