#!/usr/bin/env bash
# Chaos gate for the fault-tolerant serving front: a supervised
# 3-worker redqaoa_lb fleet under deterministic fault injection must
# answer EVERY request exactly once, byte-identical to a fault-free
# run, and converge healthy. CI's chaos job and the `chaos_smoke`
# ctest both run exactly this.
#
#   usage: chaos_smoke.sh <redqaoa_lb> <redqaoa_serve>
#
# Part 1 computes the fault-free baseline: the full request set piped
# through one redqaoa_serve over stdio (responses are pure functions
# of request content, so this is THE expected byte sequence no matter
# how many workers, lanes, or retries sit in between).
# Part 2 starts redqaoa_lb with 3 workers, arms worker-side aborts
# (every worker crashes at its 40th request — including restarted
# generations) and front-side connection resets (every 40th client
# request starting at the 10th), then drives the same request set
# through a retrying client. The run passes only if every id is
# answered exactly once with the baseline's exact bytes, the final
# health document shows all workers up with >= 2 restarts and >= 5
# injected resets, and the lb shuts down cleanly on request.
set -euo pipefail

LB=${1:?usage: chaos_smoke.sh <redqaoa_lb> <redqaoa_serve>}
SERVE=${2:?usage: chaos_smoke.sh <redqaoa_lb> <redqaoa_serve>}

workdir=$(mktemp -d)
lb_pid=""
cleanup() {
    if [ -n "$lb_pid" ] && kill -0 "$lb_pid" 2>/dev/null; then
        kill "$lb_pid" 2>/dev/null || true
        wait "$lb_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== chaos smoke: generating the request set =="
python3 - "$workdir/requests.ndjson" <<'EOF'
import json, sys

# 220 deterministic requests over 11 distinct graphs (distinct
# structure hashes spread the load across the lb's 3 lanes). Every
# method used is a pure function of request content — the precondition
# for replay-on-failure being safe at all.
def ring(n):
    return {"nodes": n, "edges": [[i, (i + 1) % n] for i in range(n)]}

def chorded_ring(n, skip):
    g = ring(n)
    g["edges"] += [[i, (i + skip) % n] for i in range(0, n, 3)]
    g["edges"] = sorted({tuple(sorted(e)) for e in g["edges"]})
    g["edges"] = [list(e) for e in g["edges"]]
    return g

graphs = [ring(n) for n in (4, 5, 6, 7, 8)]
graphs += [chorded_ring(n, 2) for n in (6, 7, 8)]
graphs += [chorded_ring(n, 3) for n in (7, 8, 9)]

requests = []
rid = 1
for round_idx in range(18):
    for gi, graph in enumerate(graphs):
        theta = 0.1 + 0.05 * ((round_idx + gi) % 7)
        requests.append({
            "id": rid, "method": "evaluate",
            "params": {"graph": graph,
                       "points": [[theta, 0.3], [0.7, theta]]}})
        rid += 1
        if rid > 210:
            break
    if rid > 210:
        break
# A slice of reduce traffic keeps the mix honest (also pure: seeded).
for seed in range(10):
    requests.append({
        "id": rid, "method": "reduce",
        "params": {"graph": graphs[seed % len(graphs)],
                   "seed": seed + 1}})
    rid += 1

assert len(requests) >= 200, len(requests)
with open(sys.argv[1], "w") as out:
    for req in requests:
        out.write(json.dumps(req) + "\n")
print(f"{len(requests)} requests over {len(graphs)} graphs")
EOF

echo "== chaos smoke: fault-free baseline (stdio, single server) =="
# The stdio transport admits every line up front; a queue bound above
# the request count keeps the baseline genuinely fault-free (no
# overloaded bounces to pollute the expected bytes).
"$SERVE" --stdio --queue 512 < "$workdir/requests.ndjson" \
    > "$workdir/baseline.ndjson"

echo "== chaos smoke: 3-worker fleet under injected aborts + resets =="
rm -f "$workdir/port.txt"
"$LB" --serve-bin "$SERVE" --workers 3 \
    --port-file "$workdir/port.txt" \
    --worker-faults "abort@40" \
    --faults "reset@10/40" \
    2> "$workdir/lb.log" &
lb_pid=$!
for _ in $(seq 1 150); do
    [ -s "$workdir/port.txt" ] && break
    if ! kill -0 "$lb_pid" 2>/dev/null; then
        echo "lb died before binding:" >&2
        cat "$workdir/lb.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$workdir/port.txt" ] || { echo "no port file" >&2; exit 1; }
port=$(cat "$workdir/port.txt")

grep -q "FAULT INJECTION ARMED" "$workdir/lb.log" || {
    echo "lb log missing the fault-injection banner" >&2
    cat "$workdir/lb.log" >&2
    exit 1
}

python3 - "$port" "$workdir/requests.ndjson" "$workdir/baseline.ndjson" <<'EOF'
import json, socket, sys, time

port = int(sys.argv[1])
requests = [l for l in open(sys.argv[2]).read().splitlines() if l.strip()]
baseline = {}
for line in open(sys.argv[3]).read().splitlines():
    if line.strip():
        baseline[json.loads(line)["id"]] = line
assert len(baseline) == len(requests), (len(baseline), len(requests))

RETRYABLE = {"overloaded", "worker_failed", "shutting_down"}

sock = None
reader = None

def connect():
    global sock, reader
    for attempt in range(50):
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=30)
            reader = sock.makefile("r")
            return
        except OSError:
            time.sleep(0.05)
    raise SystemExit("could not (re)connect to the lb")

def drop():
    global sock, reader
    for closing in (reader, sock):
        try:
            if closing is not None:
                closing.close()
        except OSError:
            pass
    sock = reader = None

def exchange(line):
    """One request line -> one response line, absorbing failures.

    Connection errors (injected resets, lb restarts) reconnect and
    resend; typed retryable errors back off and resend. Anything else
    is a hard failure. Safe only because every request is pure.
    """
    for attempt in range(25):
        if sock is None:
            connect()
        try:
            sock.sendall((line + "\n").encode())
            response = reader.readline()
        except OSError:
            drop()
            continue
        if not response.endswith("\n"):
            drop()  # EOF or a torn frame: never parse it.
            continue
        response = response.rstrip("\n")
        doc = json.loads(response)
        if not doc.get("ok") and doc.get("error", {}).get("code") in RETRYABLE:
            time.sleep(0.02 * (attempt + 1))
            continue
        return response
    raise SystemExit(f"retry budget exhausted for: {line[:80]}")

def call(doc):
    return json.loads(exchange(json.dumps(doc)))

connect()
t0 = time.time()
answered = {}
for line in requests:
    rid = json.loads(line)["id"]
    response = exchange(line)
    assert rid not in answered, f"id {rid} answered twice"
    answered[rid] = response

# Exactly once, byte-identical to the fault-free run.
assert len(answered) == len(requests), (len(answered), len(requests))
mismatches = [rid for rid, line in answered.items()
              if line != baseline[rid]]
assert not mismatches, \
    f"{len(mismatches)} responses differ from the baseline; first: " \
    f"{answered[mismatches[0]][:120]} != {baseline[mismatches[0]][:120]}"
elapsed = time.time() - t0

# The fleet must converge: every worker back up, restarts recorded,
# and the front's fault plane must have actually fired.
deadline = time.time() + 30
while True:
    health = call({"id": "health-final", "method": "health"})
    assert health["ok"], health
    h = health["result"]
    workers = h["workers"]
    if all(w["state"] == "up" for w in workers) or time.time() > deadline:
        break
    time.sleep(0.2)
assert h["status"] == "ok", h
assert len(workers) == 3, workers
assert all(w["state"] == "up" for w in workers), workers
restarts = sum(w["restarts"] for w in workers)
assert restarts >= 2, f"expected >= 2 worker restarts, saw {restarts}"
assert h["faults"]["injected"]["reset"] >= 5, h["faults"]
assert h["served"] >= len(requests), h
assert h["in_flight"] == 0, h

bye = call({"id": "bye", "method": "shutdown"})
assert bye["ok"] and bye["result"]["stopping"], bye
print(f"chaos OK: {len(requests)} requests answered exactly once and"
      f" byte-identical under {restarts} worker crashes and"
      f" {h['faults']['injected']['reset']} injected resets"
      f" ({elapsed:.1f}s); replays={h['replays']}")
EOF

lb_status=0
wait "$lb_pid" || lb_status=$?
lb_pid=""
if [ "$lb_status" -ne 0 ]; then
    echo "lb exited with status $lb_status" >&2
    cat "$workdir/lb.log" >&2
    exit 1
fi
grep -q "clean shutdown" "$workdir/lb.log" || {
    echo "lb log missing clean-shutdown marker" >&2
    cat "$workdir/lb.log" >&2
    exit 1
}
echo "chaos smoke PASSED"
