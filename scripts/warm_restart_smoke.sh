#!/usr/bin/env bash
# End-to-end smoke of the persistent warm-start store with the real
# binaries (no gtest): CI's warm-restart job and the
# `warm_restart_smoke` ctest both run exactly this.
#
#   usage: warm_restart_smoke.sh <redqaoa_serve> <redqaoa_lb>
#
# Part 1 runs the SAME optimize/evaluate trace through two stdio
# server lifetimes sharing one --store-dir and requires (a) the second
# lifetime's data-plane responses byte-identical to the first — the
# store's determinism contract — and (b) its stats to report
# store_warm_hits > 0 with zero points evaluated, proving the answers
# came from disk, across a real process boundary.
# Part 2 tears bytes off the log's tail (a crash mid-append) and
# requires a third lifetime to still answer the full trace correctly
# (recomputed cold, identical bytes) instead of crashing.
# Part 3 fronts the store with redqaoa_lb: per-lane store directories
# must appear, a repeated request through a RESTARTED lb must come
# back byte-identical, and the lb health document must aggregate the
# workers' store counters into its "engine" block.
set -euo pipefail

SERVE=${1:?usage: warm_restart_smoke.sh <redqaoa_serve> <redqaoa_lb>}
LB=${2:?usage: warm_restart_smoke.sh <redqaoa_serve> <redqaoa_lb>}

workdir=$(mktemp -d)
lb_pid=""
cleanup() {
    if [ -n "$lb_pid" ] && kill -0 "$lb_pid" 2>/dev/null; then
        kill "$lb_pid" 2>/dev/null || true
        wait "$lb_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

store="$workdir/store"

cat > "$workdir/requests.ndjson" <<'EOF'
{"id": 1, "method": "optimize", "params": {"graph": {"nodes": 8, "edges": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,0],[0,4],[1,5]]}, "spec": {"layers": 1}, "seed": 7}}
{"id": 2, "method": "evaluate", "params": {"graph": {"nodes": 8, "edges": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,0],[0,4],[1,5]]}, "points": [[0.3, 0.2], [0.1, 0.4], [1.25, -0.5]]}}
{"id": 3, "method": "optimize", "params": {"graph": {"nodes": 6, "edges": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,0],[0,3]]}, "spec": {"layers": 1}, "seed": 21, "restarts": 2, "max_evaluations": 30}}
{"id": 4, "method": "stats"}
EOF

run_trace() { # run_trace <outfile>
    "$SERVE" --stdio --store-dir "$store" \
        < "$workdir/requests.ndjson" > "$1" 2>> "$workdir/serve.log"
}

echo "== warm-restart smoke: cold lifetime, warm lifetime =="
run_trace "$workdir/run1.ndjson"
run_trace "$workdir/run2.ndjson"
[ -s "$store/shard0/results.log" ] || {
    echo "store log was not created" >&2
    exit 1
}

python3 - "$workdir/run1.ndjson" "$workdir/run2.ndjson" warm <<'EOF'
import json, sys

run1 = open(sys.argv[1]).read().splitlines()
run2 = open(sys.argv[2]).read().splitlines()
assert len(run1) == len(run2) == 4, (len(run1), len(run2))

# Data plane (everything but the stats line): byte-identical across
# the restart — the store replays recorded bit patterns.
for i, (a, b) in enumerate(zip(run1[:3], run2[:3])):
    assert json.loads(a)["ok"], a
    assert a == b, f"line {i + 1} differs across restart:\n{a}\n{b}"

e1 = json.loads(run1[3])["result"]["engine"]
e2 = json.loads(run2[3])["result"]["engine"]
assert e1["store_warm_hits"] == 0, e1
assert e1["store_appends"] > 0 and e1["store_records"] > 0, e1
if sys.argv[3] == "warm":
    # Every answer came from disk: warm hits, nothing evaluated.
    assert e2["store_warm_hits"] > 0, e2
    assert e2["evaluated"] == 0, e2
    print(f"warm restart OK: {e2['store_warm_hits']} store hits,"
          " 0 points evaluated, byte-identical responses")
else:
    print("recovered run OK: byte-identical responses after corruption")
EOF

echo "== warm-restart smoke: torn tail record recovers cold =="
log="$store/shard0/results.log"
size=$(wc -c < "$log")
truncate -s $((size - 3)) "$log"
run_trace "$workdir/run3.ndjson"
python3 - "$workdir/run1.ndjson" "$workdir/run3.ndjson" recovered <<'EOF'
import json, sys

run1 = open(sys.argv[1]).read().splitlines()
run3 = open(sys.argv[2]).read().splitlines()
for i, (a, b) in enumerate(zip(run1[:3], run3[:3])):
    assert b and json.loads(b)["ok"], b
    assert a == b, f"line {i + 1} differs after corruption:\n{a}\n{b}"
e3 = json.loads(run3[3])["result"]["engine"]
assert e3["store_recovered_drops"] > 0, e3
print(f"corruption OK: {e3['store_recovered_drops']} damaged segment"
      " dropped, full trace still byte-identical")
EOF

echo "== warm-restart smoke: store handoff through redqaoa_lb =="
lb_store="$workdir/lb_store"

start_lb() {
    rm -f "$workdir/lb.port"
    "$LB" --serve-bin "$SERVE" --workers 2 --store-dir "$lb_store" \
        --port-file "$workdir/lb.port" 2>> "$workdir/lb.log" &
    lb_pid=$!
    for _ in $(seq 1 150); do
        [ -s "$workdir/lb.port" ] && break
        if ! kill -0 "$lb_pid" 2>/dev/null; then
            echo "lb died before binding:" >&2
            cat "$workdir/lb.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    [ -s "$workdir/lb.port" ] || { echo "no lb port file" >&2; exit 1; }
}

stop_lb() {
    kill "$lb_pid" 2>/dev/null || true
    wait "$lb_pid" 2>/dev/null || true
    lb_pid=""
}

drive_lb() { # drive_lb <outfile>
    python3 - "$(cat "$workdir/lb.port")" "$1" <<'EOF'
import json, socket, sys, time

sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
reader = sock.makefile("r")

def call(line):
    sock.sendall((line + "\n").encode())
    return reader.readline().rstrip("\n")

req = json.dumps({"id": 1, "method": "optimize", "params": {
    "graph": {"nodes": 8, "edges": [[0, 1], [1, 2], [2, 3], [3, 4],
                                    [4, 5], [5, 6], [6, 7], [7, 0],
                                    [0, 4], [1, 5]]},
    "spec": {"layers": 1}, "seed": 7}})
answer = call(req)
assert json.loads(answer)["ok"], answer
open(sys.argv[2], "w").write(answer + "\n")

# The lb health document must aggregate the workers' engine blocks
# (collected by its liveness probes — poll until one lands).
for _ in range(100):
    health = json.loads(call(json.dumps({"id": 2, "method": "health"})))
    assert health["ok"], health
    engine = health["result"].get("engine")
    assert engine is not None, health
    assert "store_warm_hits" in engine, engine
    if engine["store_records"] > 0:
        break
    time.sleep(0.1)
else:
    raise AssertionError(f"lb health never aggregated store counters: {engine}")
print(f"lb health OK: engine block aggregated"
      f" ({engine['store_records']} records,"
      f" {engine['store_warm_hits']} warm hits)")
EOF
}

start_lb
drive_lb "$workdir/lb_run1.ndjson"
[ -d "$lb_store/worker0" ] || {
    echo "per-lane store directory missing" >&2
    ls -R "$lb_store" >&2 || true
    exit 1
}
stop_lb

# A RESTARTED lb (fresh worker processes, same store root) must answer
# the same request byte-identically from the warm store.
start_lb
drive_lb "$workdir/lb_run2.ndjson"
stop_lb
cmp "$workdir/lb_run1.ndjson" "$workdir/lb_run2.ndjson" || {
    echo "lb responses differ across restart" >&2
    diff "$workdir/lb_run1.ndjson" "$workdir/lb_run2.ndjson" >&2 || true
    exit 1
}
grep -q "clean shutdown" "$workdir/lb.log" || {
    echo "lb log missing clean-shutdown marker" >&2
    cat "$workdir/lb.log" >&2
    exit 1
}
echo "lb handoff OK: per-lane stores created, restarted fleet answered byte-identically"
echo "warm restart smoke PASSED"
