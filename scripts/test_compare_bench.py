#!/usr/bin/env python3
"""Unit tests for scripts/compare_bench.py (stdlib only, registered as
the `compare_bench_py` ctest). Pins the contracts CI's perf gate leans
on: rate metrics regress on DROPS (not rises), `_seconds` metrics
regress on slowdowns (not speedups), `_ms` metrics are timing drift
rather than value deltas, timings under the noise floor are skipped,
added/removed figures are informational, and
--fail-on-kernel-regression turns kernel regressions into exit 1."""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import compare_bench


def doc(figures, quick=True):
    return {
        "schema_version": 1,
        "metadata": {"quick": quick, "total_wall_seconds": 1.0},
        "figures": figures,
    }


def fig(name, metrics, wall_seconds=0.5, series=None):
    out = {"name": name, "wall_seconds": wall_seconds,
           "metrics": metrics}
    if series is not None:
        out["series"] = series
    return out


class CompareBenchTest(unittest.TestCase):
    def run_main(self, base, new, extra_args=()):
        """Run compare_bench.main on two docs; (exit code, stdout)."""
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            new_path = os.path.join(tmp, "new.json")
            with open(base_path, "w") as fh:
                json.dump(base, fh)
            with open(new_path, "w") as fh:
                json.dump(new, fh)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = compare_bench.main(
                    [base_path, new_path, *extra_args])
            return code, out.getvalue()

    # -- check_kernel_regressions directionality ----------------------

    def kernel_regressions(self, base_metrics, new_metrics,
                           min_seconds=2e-5):
        base_figs = {"micro_kernels": fig("micro_kernels", base_metrics)}
        new_figs = {"micro_kernels": fig("micro_kernels", new_metrics)}
        return compare_bench.check_kernel_regressions(
            "^micro_kernels$", base_figs, new_figs, 0.25, min_seconds)

    def test_seconds_slowdown_is_a_regression(self):
        got = self.kernel_regressions({"phase_seconds": 1e-3},
                                      {"phase_seconds": 2e-3})
        self.assertEqual(len(got), 1)
        self.assertIn("phase_seconds", got[0])

    def test_seconds_speedup_is_not_a_regression(self):
        got = self.kernel_regressions({"phase_seconds": 2e-3},
                                      {"phase_seconds": 1e-3})
        self.assertEqual(got, [])

    def test_rate_drop_is_a_regression(self):
        got = self.kernel_regressions({"jobs_per_second": 100.0},
                                      {"jobs_per_second": 50.0})
        self.assertEqual(len(got), 1)
        self.assertIn("jobs_per_second", got[0])
        self.assertIn("throughput", got[0])

    def test_rate_rise_is_not_a_regression(self):
        got = self.kernel_regressions({"jobs_per_second": 50.0},
                                      {"jobs_per_second": 100.0})
        self.assertEqual(got, [])

    def test_noise_floor_skips_tiny_timings_and_fast_rates(self):
        # 1 microsecond per op is under the 2e-5 s floor either way it
        # is expressed, so neither entry may fire however bad the delta.
        got = self.kernel_regressions(
            {"spin_seconds": 1e-6, "spins_per_second": 1e6},
            {"spin_seconds": 9e-6, "spins_per_second": 1e5})
        self.assertEqual(got, [])

    def test_only_matching_figures_are_checked(self):
        base_figs = {"fig18": fig("fig18", {"slow_seconds": 1e-3})}
        new_figs = {"fig18": fig("fig18", {"slow_seconds": 9e-3})}
        got = compare_bench.check_kernel_regressions(
            "^micro_kernels$", base_figs, new_figs, 0.25, 2e-5)
        self.assertEqual(got, [])

    # -- metric classification in the general comparison --------------

    def test_ms_drift_is_timing_not_value_delta(self):
        flags, time_drift, infos = [], [], []
        compare_bench.compare_metrics(
            "svc", fig("svc", {"p99_ms": 10.0}),
            fig("svc", {"p99_ms": 100.0}), 0.25, 0.5,
            flags, time_drift, infos)
        self.assertEqual(flags, [])
        self.assertEqual(len(time_drift), 1)
        self.assertIn("p99_ms", time_drift[0])

    def test_value_delta_beyond_tolerance_is_flagged(self):
        flags, time_drift, infos = [], [], []
        compare_bench.compare_metrics(
            "f", fig("f", {"mse": 1.0}), fig("f", {"mse": 2.0}),
            0.25, 1.0, flags, time_drift, infos)
        self.assertEqual(len(flags), 1)
        self.assertEqual(time_drift, [])

    def test_added_and_removed_metrics_are_informational(self):
        flags, time_drift, infos = [], [], []
        compare_bench.compare_metrics(
            "f", fig("f", {"old": 1.0}), fig("f", {"new": 1.0}),
            0.25, 1.0, flags, time_drift, infos)
        self.assertEqual(flags, [])
        self.assertEqual(len(infos), 2)

    # -- end-to-end exit-status contracts ------------------------------

    def base_and_regressed(self):
        base = doc([fig("micro_kernels", {"phase_seconds": 1e-3})])
        new = doc([fig("micro_kernels", {"phase_seconds": 2e-3})])
        return base, new

    def test_default_run_never_fails_on_kernel_regressions(self):
        base, new = self.base_and_regressed()
        code, out = self.run_main(
            base, new, ["--kernel-figures", "^micro_kernels$"])
        self.assertEqual(code, 0)
        self.assertIn("kernel regressions", out)

    def test_fail_flag_turns_kernel_regressions_into_exit_1(self):
        base, new = self.base_and_regressed()
        code, out = self.run_main(
            base, new, ["--kernel-figures", "^micro_kernels$",
                        "--fail-on-kernel-regression", "--annotate"])
        self.assertEqual(code, 1)
        self.assertIn("::error title=bench kernel regression::", out)

    def test_fail_flag_passes_without_regressions(self):
        base, _ = self.base_and_regressed()
        code, _ = self.run_main(
            base, base, ["--kernel-figures", "^micro_kernels$",
                         "--fail-on-kernel-regression"])
        self.assertEqual(code, 0)

    def test_annotations_stay_warnings_when_not_gating(self):
        base, new = self.base_and_regressed()
        code, out = self.run_main(
            base, new,
            ["--kernel-figures", "^micro_kernels$", "--annotate"])
        self.assertEqual(code, 0)
        self.assertIn("::warning title=bench kernel regression::", out)

    def test_missing_figure_on_either_side_is_informational(self):
        base = doc([fig("a", {"x": 1.0}), fig("gone", {"x": 1.0})])
        new = doc([fig("a", {"x": 1.0}), fig("fresh", {"x": 1.0})])
        code, out = self.run_main(
            base, new, ["--kernel-figures", ".*", "--strict",
                        "--fail-on-kernel-regression"])
        self.assertEqual(code, 0)
        self.assertIn("gone: figure removed", out)
        self.assertIn("fresh: figure added", out)

    def test_strict_flags_value_deltas(self):
        base = doc([fig("f", {"mse": 1.0})])
        new = doc([fig("f", {"mse": 2.0})])
        code, _ = self.run_main(base, new, ["--strict"])
        self.assertEqual(code, 1)
        code, _ = self.run_main(base, new)
        self.assertEqual(code, 0)

    def test_series_timing_vs_value_classification(self):
        base = doc([fig("f", {}, series={"lat_ms": [1.0, 2.0],
                                         "vals": [1.0, 1.0]})])
        new = doc([fig("f", {}, series={"lat_ms": [10.0, 20.0],
                                        "vals": [1.0, 2.0]})])
        code, out = self.run_main(
            base, new, ["--strict", "--time-tolerance", "0.5"])
        self.assertEqual(code, 1)  # vals drifted: a value delta.
        self.assertIn("lat_ms", out)
        self.assertIn("vals", out)


if __name__ == "__main__":
    unittest.main()
