#!/usr/bin/env bash
# End-to-end smoke of the request service, exercising both transports
# with the real binaries (no gtest): CI's service job and the
# `service_smoke` ctest both run exactly this.
#
#   usage: service_smoke.sh <redqaoa_serve> <example_service_client> [redqaoa_top] [redqaoa_lb]
#
# Part 1 pipes a fixed NDJSON request script through the stdio
# transport and validates every response line (ids echo back, ok
# flags, typed error codes) with a stdlib-only python check.
# Part 2 starts a TCP instance on an ephemeral port, runs the example
# client against it (all six methods), asks for shutdown, and requires
# a clean exit from both processes.
# Part 3 starts a sharded TCP instance (--shards 4 --max-conns 64) and
# drives the schema_version 2 protocol with a stdlib-only python
# client: the hello handshake must advertise the configured bounds,
# v2 responses must carry routing metadata, and stats must report one
# block per shard with the aggregate's exact key set.
# Part 4 starts an instance with --metrics-port, runs a traced
# optimize, scrapes GET /metrics (stdlib-only HTTP), validates the
# Prometheus exposition, and renders one redqaoa_top frame. When the
# lb binary is given, the same scrape runs against redqaoa_lb so both
# binaries' metrics endpoints are exercised.
set -euo pipefail

SERVE=${1:?usage: service_smoke.sh <redqaoa_serve> <example_service_client> [redqaoa_top] [redqaoa_lb]}
CLIENT=${2:?usage: service_smoke.sh <redqaoa_serve> <example_service_client> [redqaoa_top] [redqaoa_lb]}
TOP=${3:-}
LB=${4:-}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== service smoke: stdio transport =="
cat > "$workdir/requests.ndjson" <<'EOF'
{"id": 1, "method": "stats"}
{"id": 2, "method": "evaluate", "params": {"graph": {"nodes": 4, "edges": [[0,1],[1,2],[2,3],[3,0]]}, "points": [[0.5, 0.3], [1.0, 0.2]]}}
{"id": "str-id", "method": "reduce", "params": {"graph": {"nodes": 6, "edges": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,0],[0,3]]}, "seed": 7}}
{"id": 4, "method": "nope"}
{"id": 5, "method": "evaluate", "params": {"graph": {"nodes": 2, "edges": [[0,1]]}}}
this is not json
{"id": 7, "method": "optimize", "params": {"graph": {"nodes": 4, "edges": [[0,1],[1,2],[2,3],[3,0]]}, "restarts": 1, "max_evaluations": 10, "seed": 1}}
{"id": 8, "method": "pipeline", "params": {"graph": {"nodes": 6, "edges": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,0],[0,3]]}, "options": {"restarts": 1, "search_evaluations": 6, "refine_evaluations": 3, "trajectories": 2, "noise": "ibmq_kolkata"}, "rng_seed": 2}}
{"id": 9, "method": "fleet", "params": {"graphs": [{"name": "ring", "graph": {"nodes": 5, "edges": [[0,1],[1,2],[2,3],[3,4],[4,0]]}}], "depths": [1], "options": {"restarts": 1, "search_evaluations": 4, "refine_evaluations": 2}, "seed0": 3}}
{"id": 10, "method": "health"}
EOF
"$SERVE" --stdio < "$workdir/requests.ndjson" > "$workdir/responses.ndjson"

python3 - "$workdir/responses.ndjson" <<'EOF'
import json, sys

lines = [l for l in open(sys.argv[1]).read().splitlines() if l.strip()]
assert len(lines) == 10, f"expected 10 response lines, got {len(lines)}"
docs = [json.loads(l) for l in lines]
for doc in docs:
    assert doc["schema_version"] == 1, doc
    assert "id" in doc and "ok" in doc, doc

by_id = {doc["id"]: doc for doc in docs}
assert by_id[1]["ok"] and "engine" in by_id[1]["result"] \
    and "server" in by_id[1]["result"], by_id[1]
ev = by_id[2]
assert ev["ok"] and ev["result"]["backend"] == "statevector" \
    and len(ev["result"]["values"]) == 2, ev
red = by_id["str-id"]
assert red["ok"] and red["result"]["graph"]["nodes"] >= 2, red
assert not by_id[4]["ok"] \
    and by_id[4]["error"]["code"] == "unknown_method", by_id[4]
assert not by_id[5]["ok"] \
    and by_id[5]["error"]["code"] == "invalid_params", by_id[5]
assert not by_id[None]["ok"] \
    and by_id[None]["error"]["code"] == "parse_error", by_id[None]
opt = by_id[7]
assert opt["ok"] and "energy" in opt["result"], opt
pipe = by_id[8]
assert pipe["ok"] and pipe["result"]["flow"] == "red-qaoa" \
    and "approx_ratio" in pipe["result"], pipe
fleet = by_id[9]
assert fleet["ok"] and fleet["result"]["tool"] == "redqaoa_fleet" \
    and len(fleet["result"]["runs"]) == 1, fleet
# Health is answered inline at admission time, while earlier stdio
# requests are still in flight — so only shape and status are stable.
health = by_id[10]
assert health["ok"] and health["result"]["status"] == "ok" \
    and health["result"]["pid"] > 0 \
    and health["result"]["in_flight"] >= 0 \
    and len(health["result"]["queue_depths"]) == 1, health
print(f"stdio transport OK: {len(docs)} well-formed responses,"
      " all seven methods answered")
EOF

echo "== service smoke: TCP transport + example client =="
rm -f "$workdir/port.txt"
"$SERVE" --tcp --port-file "$workdir/port.txt" 2> "$workdir/server.log" &
server_pid=$!
for _ in $(seq 1 100); do
    [ -s "$workdir/port.txt" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "server died before binding:" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$workdir/port.txt" ] || { echo "no port file" >&2; exit 1; }
port=$(cat "$workdir/port.txt")

"$CLIENT" "$port" --shutdown

# wait returns the server's status; don't let errexit skip the
# diagnostics below on a non-zero exit.
server_status=0
wait "$server_pid" || server_status=$?
server_pid=""
if [ "$server_status" -ne 0 ]; then
    echo "server exited with status $server_status" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi
grep -q "clean shutdown" "$workdir/server.log" || {
    echo "server log missing clean-shutdown marker" >&2
    cat "$workdir/server.log" >&2
    exit 1
}
echo "TCP transport OK: client round-tripped all methods, server shut down cleanly"

echo "== service smoke: sharded TCP + protocol v2 =="
rm -f "$workdir/port.txt"
"$SERVE" --tcp --shards 4 --max-conns 64 --port-file "$workdir/port.txt" \
    2> "$workdir/server2.log" &
server_pid=$!
for _ in $(seq 1 100); do
    [ -s "$workdir/port.txt" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "sharded server died before binding:" >&2
        cat "$workdir/server2.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$workdir/port.txt" ] || { echo "no port file" >&2; exit 1; }
port=$(cat "$workdir/port.txt")

python3 - "$port" <<'EOF'
import json, socket, sys

sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
reader = sock.makefile("r")

def call(doc):
    sock.sendall((json.dumps(doc) + "\n").encode())
    return json.loads(reader.readline())

hello = call({"id": 1, "method": "hello", "schema_version": 2})
assert hello["schema_version"] == 2, hello
assert hello["ok"], hello
info = hello["result"]
assert info["server"] == "redqaoa_serve", info
assert info["schema_versions"] == [1, 2], info
assert info["shards"] == 4, info
assert info["max_connections"] == 64, info
assert info["max_line_bytes"] == 8 << 20, info
assert "evaluate" in info["methods"] and "hello" in info["methods"], info

ev = call({"id": 2, "method": "evaluate", "schema_version": 2,
           "params": {"graph": {"nodes": 4,
                                "edges": [[0, 1], [1, 2], [2, 3], [3, 0]]},
                      "points": [[0.5, 0.3]]}})
assert ev["ok"], ev
assert 0 <= ev["route"]["shard"] < 4, ev
assert ev["route"]["queue_ms"] >= 0, ev

stats = call({"id": 3, "method": "stats", "schema_version": 2})
assert stats["ok"], stats
engine = stats["result"]["engine"]
shards = stats["result"]["shards"]
assert len(shards) == 4, stats
for shard in shards:
    assert set(shard) == set(engine), (shard, engine)
assert sum(s["points"] for s in shards) == engine["points"], stats

# A v1 request on the same connection still answers in the v1 shape.
v1 = call({"id": 4, "method": "stats"})
assert v1["schema_version"] == 1 and "route" not in v1, v1
assert "shards" not in v1["result"], v1

# The liveness probe: answered inline, one queue depth per shard, and
# nothing in flight on a synchronous connection.
health = call({"id": 6, "method": "health", "schema_version": 2})
assert health["ok"], health
h = health["result"]
assert h["status"] == "ok" and h["pid"] > 0, h
assert h["shards"] == 4 and len(h["queue_depths"]) == 4, h
assert h["in_flight"] == 0 and h["uptime_seconds"] >= 0, h

bye = call({"id": 5, "method": "shutdown", "schema_version": 2})
assert bye["ok"] and bye["result"]["stopping"], bye
print("sharded v2 OK: hello advertises 4 shards / 64 conns, routing"
      " metadata present, per-shard stats match the aggregate key set")
EOF

server_status=0
wait "$server_pid" || server_status=$?
server_pid=""
if [ "$server_status" -ne 0 ]; then
    echo "sharded server exited with status $server_status" >&2
    cat "$workdir/server2.log" >&2
    exit 1
fi
grep -q "clean shutdown" "$workdir/server2.log" || {
    echo "sharded server log missing clean-shutdown marker" >&2
    cat "$workdir/server2.log" >&2
    exit 1
}
grep -q "shards=4" "$workdir/server2.log" || {
    echo "sharded server log missing shards=4 banner" >&2
    cat "$workdir/server2.log" >&2
    exit 1
}

echo "== service smoke: metrics plane =="
# Shared scrape-and-validate: a traced optimize over NDJSON, then a
# raw-socket GET of the Prometheus endpoint. Role "worker" expects the
# execution-stage spans and per-process families; role "lb" expects
# the fleet hop spans and the lb aggregation families.
cat > "$workdir/metrics_check.py" <<'EOF'
import json, socket, sys

role, port, mport = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
sock = socket.create_connection(("127.0.0.1", port))
reader = sock.makefile("r")

def call(doc):
    sock.sendall((json.dumps(doc) + "\n").encode())
    return json.loads(reader.readline())

# A traced request, so the scrape below sees real traffic and the
# trace plane is exercised through the real TCP transport.
opt = call({"id": 1, "method": "optimize", "schema_version": 2,
            "trace": True,
            "params": {"graph": {"nodes": 4,
                                 "edges": [[0, 1], [1, 2], [2, 3], [3, 0]]},
                       "restarts": 1, "max_evaluations": 10, "seed": 1}})
assert opt["ok"], opt
spans = {s["name"] for s in opt["trace"]["spans"]}
if role == "lb":
    want_spans = {"lb.queue", "lb.forward", "worker.admission",
                  "shard.queue", "backend.evaluate"}
else:
    want_spans = {"worker.admission", "shard.queue", "backend.evaluate"}
assert want_spans <= spans, opt

def http_get(target):
    s = socket.create_connection(("127.0.0.1", mport))
    s.sendall(f"GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
              .encode())
    data = b""
    while chunk := s.recv(65536):
        data += chunk
    s.close()
    head, _, body = data.partition(b"\r\n\r\n")
    return head.decode(), body.decode()

head, body = http_get("/metrics")
assert "200" in head.splitlines()[0], head
assert "text/plain; version=0.0.4" in head, head

# Exposition validity: every line is a comment or `name value`, every
# sample family has HELP and TYPE, histogram buckets are cumulative.
helped, typed, seen = set(), set(), set()
bucket_last = {}
for line in body.splitlines():
    assert line.strip(), "blank line in exposition"
    if line.startswith("# HELP "):
        helped.add(line.split()[2]); continue
    if line.startswith("# TYPE "):
        typed.add(line.split()[2]); continue
    name_labels, _, value = line.rpartition(" ")
    float(value)  # must parse
    fam = name_labels.split("{")[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if fam.endswith(suffix) and fam.removesuffix(suffix) in typed:
            base = fam.removesuffix(suffix)
            if suffix == "_bucket":
                prev = bucket_last.get(name_labels.split('le="')[0], -1)
                assert float(value) >= prev, line
                bucket_last[name_labels.split('le="')[0]] = float(value)
            fam = base
            break
    seen.add(fam)
missing = {f for f in seen if f not in helped or f not in typed}
assert not missing, f"families without HELP/TYPE: {missing}"

if role == "lb":
    required = {"redqaoa_uptime_seconds", "redqaoa_process_pid",
                "redqaoa_lb_requests_received_total",
                "redqaoa_lb_responses_total", "redqaoa_lb_forwards_total",
                "redqaoa_lb_worker_failures_total", "redqaoa_lb_worker_up",
                "redqaoa_in_flight", "redqaoa_queue_depth",
                "redqaoa_engine_jobs_total"}
else:
    required = {"redqaoa_uptime_seconds", "redqaoa_process_pid",
                "redqaoa_requests_received_total",
                "redqaoa_requests_admitted_total",
                "redqaoa_responses_total", "redqaoa_requests_rejected_total",
                "redqaoa_in_flight", "redqaoa_queue_depth",
                "redqaoa_request_latency_seconds",
                "redqaoa_engine_jobs_total", "redqaoa_store_events_total",
                "redqaoa_stage_seconds"}
assert required <= seen, f"missing families: {required - seen}"

head404, _ = http_get("/nope")
assert "404" in head404.splitlines()[0], head404

bye = call({"id": 2, "method": "shutdown", "schema_version": 2})
assert bye["ok"], bye
print(f"{role} metrics OK: traced optimize spans present, /metrics"
      f" serves valid exposition with {len(seen)} families")
EOF

rm -f "$workdir/port.txt" "$workdir/mport.txt"
"$SERVE" --tcp --shards 2 --port-file "$workdir/port.txt" \
    --metrics-port 0 --metrics-port-file "$workdir/mport.txt" \
    2> "$workdir/server3.log" &
server_pid=$!
for _ in $(seq 1 100); do
    [ -s "$workdir/port.txt" ] && [ -s "$workdir/mport.txt" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "metrics server died before binding:" >&2
        cat "$workdir/server3.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$workdir/port.txt" ] || { echo "no port file" >&2; exit 1; }
[ -s "$workdir/mport.txt" ] || { echo "no metrics port file" >&2; exit 1; }
port=$(cat "$workdir/port.txt")
mport=$(cat "$workdir/mport.txt")

python3 "$workdir/metrics_check.py" worker "$port" "$mport"

server_status=0
wait "$server_pid" || server_status=$?
server_pid=""
if [ "$server_status" -ne 0 ]; then
    echo "metrics server exited with status $server_status" >&2
    cat "$workdir/server3.log" >&2
    exit 1
fi

if [ -n "$LB" ]; then
    echo "== service smoke: lb metrics plane =="
    rm -f "$workdir/port.txt" "$workdir/mport.txt"
    "$LB" --serve-bin "$SERVE" --workers 2 \
        --port-file "$workdir/port.txt" \
        --metrics-port 0 --metrics-port-file "$workdir/mport.txt" \
        2> "$workdir/lb.log" &
    server_pid=$!
    for _ in $(seq 1 150); do
        [ -s "$workdir/port.txt" ] && [ -s "$workdir/mport.txt" ] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "lb died before binding:" >&2
            cat "$workdir/lb.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    [ -s "$workdir/port.txt" ] || { echo "no lb port file" >&2; exit 1; }
    [ -s "$workdir/mport.txt" ] || {
        echo "no lb metrics port file" >&2
        exit 1
    }
    port=$(cat "$workdir/port.txt")
    mport=$(cat "$workdir/mport.txt")

    python3 "$workdir/metrics_check.py" lb "$port" "$mport"

    server_status=0
    wait "$server_pid" || server_status=$?
    server_pid=""
    if [ "$server_status" -ne 0 ]; then
        echo "lb exited with status $server_status" >&2
        cat "$workdir/lb.log" >&2
        exit 1
    fi
fi

if [ -n "$TOP" ]; then
    echo "== service smoke: redqaoa_top dashboard =="
    rm -f "$workdir/port.txt"
    "$SERVE" --tcp --port-file "$workdir/port.txt" \
        2> "$workdir/server4.log" &
    server_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$workdir/port.txt" ] && break
        sleep 0.1
    done
    port=$(cat "$workdir/port.txt")
    "$TOP" --port "$port" --once > "$workdir/top.txt"
    grep -q "redqaoa_top" "$workdir/top.txt" || {
        echo "dashboard missing header" >&2
        cat "$workdir/top.txt" >&2
        exit 1
    }
    grep -q "redqaoa_uptime_seconds" "$workdir/top.txt" || {
        echo "dashboard missing metric families" >&2
        cat "$workdir/top.txt" >&2
        exit 1
    }
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
    echo "dashboard OK: one frame rendered with health + metrics"
fi
echo "service smoke PASSED"
