/**
 * @file
 * Canonical-form isomorphism tests: certificates must be permutation
 * invariant, distinguish non-isomorphic graphs (including WL-hard
 * regular pairs), and drive deduplication correctly.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "graph/subgraph.hpp"

namespace redqaoa {
namespace {

/** Relabel @p g by permutation pi (new id = pi[old id]). */
Graph
permuted(const Graph &g, const std::vector<int> &pi)
{
    Graph out(g.numNodes());
    for (const Edge &e : g.edges())
        out.addEdge(pi[static_cast<std::size_t>(e.u)],
                    pi[static_cast<std::size_t>(e.v)]);
    return out;
}

TEST(Isomorphism, PermutationInvariance)
{
    Rng rng(1);
    for (int trial = 0; trial < 10; ++trial) {
        Graph g = gen::connectedGnp(8, 0.4, rng);
        std::vector<int> pi(8);
        for (int i = 0; i < 8; ++i)
            pi[static_cast<std::size_t>(i)] = i;
        rng.shuffle(pi);
        Graph h = permuted(g, pi);
        EXPECT_TRUE(isIsomorphic(g, h)) << "trial " << trial;
        EXPECT_EQ(canonicalCertificate(g), canonicalCertificate(h));
    }
}

TEST(Isomorphism, DistinguishesEdgeCounts)
{
    Graph a = gen::cycle(5);
    Graph b = gen::path(5);
    EXPECT_FALSE(isIsomorphic(a, b));
}

TEST(Isomorphism, DistinguishesSameDegreeSequence)
{
    // C_6 vs two triangles: both 2-regular on 6 nodes.
    Graph c6 = gen::cycle(6);
    Graph two_triangles(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
    EXPECT_FALSE(isIsomorphic(c6, two_triangles));
}

TEST(Isomorphism, StarVsTriangleWithTail)
{
    Graph star = gen::star(4);
    Graph triangle_tail(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
    EXPECT_FALSE(isIsomorphic(star, triangle_tail));
}

TEST(Isomorphism, EmptyAndSingletonGraphs)
{
    EXPECT_TRUE(isIsomorphic(Graph(0), Graph(0)));
    EXPECT_TRUE(isIsomorphic(Graph(1), Graph(1)));
    EXPECT_FALSE(isIsomorphic(Graph(1), Graph(2)));
}

TEST(Isomorphism, RegularPairsNeedingBacktrack)
{
    // K_3,3 vs the 3-prism: both 3-regular on 6 nodes, not isomorphic
    // (K_3,3 is triangle-free). WL alone cannot split 1-colored regular
    // graphs; the backtracking canonical form must.
    Graph k33(6,
              {{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3},
               {2, 4}, {2, 5}});
    Graph prism(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5},
                    {0, 3}, {1, 4}, {2, 5}});
    EXPECT_FALSE(isIsomorphic(k33, prism));

    // And each must still match its own relabelings.
    std::vector<int> pi{3, 1, 4, 0, 5, 2};
    EXPECT_TRUE(isIsomorphic(k33, permuted(k33, pi)));
    EXPECT_TRUE(isIsomorphic(prism, permuted(prism, pi)));
}

TEST(Isomorphism, UniqueFilterOnCycleSubgraphs)
{
    // All 5 connected 3-node subgraphs of C_5 are paths: one class.
    Graph g = gen::cycle(5);
    std::vector<Graph> subs;
    for (const auto &nodes : connectedSubgraphs(g, 3))
        subs.push_back(inducedSubgraph(g, nodes).graph);
    EXPECT_EQ(subs.size(), 5u);
    auto unique = uniqueUpToIsomorphism(subs);
    EXPECT_EQ(unique.size(), 1u);
}

TEST(Isomorphism, UniqueFilterKeepsDistinctClasses)
{
    std::vector<Graph> graphs{gen::path(4), gen::star(4), gen::cycle(4),
                              gen::path(4), gen::complete(4)};
    auto unique = uniqueUpToIsomorphism(graphs);
    EXPECT_EQ(unique.size(), 4u);
    EXPECT_EQ(unique[0], 0u); // First occurrence wins.
}

TEST(Isomorphism, CountsNonIsomorphicFourNodeGraphs)
{
    // There are exactly 2 connected graph classes on 3 nodes and
    // 6 on 4 nodes; verify via enumeration of K_n subgraph patterns.
    Rng rng(2);
    std::vector<Graph> all3, all4;
    // Enumerate all labeled graphs on 3 and 4 nodes, keep connected.
    for (int mask = 0; mask < 8; ++mask) {
        Graph g(3);
        std::vector<std::pair<int, int>> pairs{{0, 1}, {0, 2}, {1, 2}};
        for (int b = 0; b < 3; ++b)
            if (mask & (1 << b))
                g.addEdge(pairs[static_cast<std::size_t>(b)].first,
                          pairs[static_cast<std::size_t>(b)].second);
        if (g.isConnected())
            all3.push_back(g);
    }
    EXPECT_EQ(uniqueUpToIsomorphism(all3).size(), 2u);

    std::vector<std::pair<int, int>> pairs4{{0, 1}, {0, 2}, {0, 3},
                                            {1, 2}, {1, 3}, {2, 3}};
    for (int mask = 0; mask < 64; ++mask) {
        Graph g(4);
        for (int b = 0; b < 6; ++b)
            if (mask & (1 << b))
                g.addEdge(pairs4[static_cast<std::size_t>(b)].first,
                          pairs4[static_cast<std::size_t>(b)].second);
        if (g.isConnected())
            all4.push_back(g);
    }
    EXPECT_EQ(uniqueUpToIsomorphism(all4).size(), 6u);
}

} // namespace
} // namespace redqaoa
