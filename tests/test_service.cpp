/**
 * @file
 * Service-layer tests. The load-bearing contracts:
 *  - the protocol layer parses/serializes the request and response
 *    envelopes with the typed error taxonomy;
 *  - every method round-trips through the server with results
 *    IDENTICAL to computing the same thing directly on the library
 *    types (the service adds transport, never values);
 *  - malformed input maps onto the right error codes;
 *  - a queued request whose deadline lapses is answered
 *    deadline_exceeded without executing;
 *  - a full admission queue answers `overloaded` (backpressure)
 *    instead of buffering or blocking;
 *  - response payloads are deterministic: the same request set yields
 *    byte-identical response lines at 1 and 8 evaluation threads,
 *    under concurrent multi-client submission, in any interleaving;
 *  - the TCP transport serves concurrent clients and shuts down
 *    cleanly on the `shutdown` method;
 *  - `health` answers inline (before admission), so liveness probes
 *    work under full queues and while draining;
 *  - chaos: against a fault-injecting transport the retrying client
 *    absorbs injected overloads, connection resets, and torn frames
 *    and still receives payloads byte-identical to a fault-free run;
 *  - the lb fleet (WorkerFleetService over a fake WorkerDirectory)
 *    relays worker responses verbatim, replays interrupted requests
 *    byte-identically across worker restarts, bounces full lanes
 *    `overloaded`, answers `worker_failed` when the replay budget or
 *    the lane's restart budget is exhausted, and drains every queued
 *    request with exactly one typed answer on stop().
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "engine/fleet.hpp"
#include "graph/generators.hpp"
#include "landscape/landscape.hpp"
#include "opt/cobyla_lite.hpp"
#include "service/client.hpp"
#include "service/fault_injection.hpp"
#include "service/server.hpp"
#include "service/socket_util.hpp"
#include "service/supervisor.hpp"

namespace redqaoa {
namespace {

using service::Request;
using service::Response;
using service::ServiceClient;
using service::ServiceError;
using service::ServiceErrorCode;
using service::ServiceServer;
using service::TcpServiceListener;

/** Restore the default global pool when a test returns. */
class PoolGuard
{
  public:
    ~PoolGuard() { ThreadPool::setGlobalThreads(ThreadPool::defaultThreads()); }
};

Graph
smallGraph(std::uint64_t seed = 5)
{
    Rng rng(seed);
    return gen::connectedGnp(9, 0.4, rng);
}

/** Error code of a response line (expects ok == false). */
ServiceErrorCode
errorCodeOf(const std::string &line)
{
    Response response = service::parseResponse(line);
    EXPECT_FALSE(response.ok) << line;
    return response.errorCode;
}

/** Result payload of a response line (expects ok == true). */
json::Value
resultOf(const std::string &line)
{
    Response response = service::parseResponse(line);
    EXPECT_TRUE(response.ok) << line;
    return response.result;
}

std::string
evaluateRequest(int id, const Graph &g,
                const std::vector<QaoaParams> &points,
                json::Value spec = json::Value())
{
    json::Value doc = json::Value::object();
    doc["id"] = id;
    doc["method"] = "evaluate";
    json::Value params = json::Value::object();
    params["graph"] = service::graphToJson(g);
    if (!spec.isNull())
        params["spec"] = std::move(spec);
    params["points"] = service::pointsToJson(points);
    doc["params"] = std::move(params);
    return doc.dump();
}

// ---------------------------------------------------------------------
// Protocol layer
// ---------------------------------------------------------------------

TEST(ServiceProtocol, ParseRequestAcceptsTheFullEnvelope)
{
    Request req = service::parseRequest(
        R"({"id": 7, "method": "stats", "params": {}, "deadline_ms": 12.5})");
    EXPECT_EQ(req.id.asNumber(), 7.0);
    EXPECT_EQ(req.method, "stats");
    EXPECT_TRUE(req.params.isObject());
    EXPECT_EQ(req.deadlineMs, 12.5);

    // String ids and omitted params/deadline are fine.
    Request minimal =
        service::parseRequest(R"({"id": "abc", "method": "stats"})");
    EXPECT_EQ(minimal.id.asString(), "abc");
    EXPECT_TRUE(minimal.params.isObject());
    EXPECT_EQ(minimal.deadlineMs, 0.0);
}

TEST(ServiceProtocol, ParseRequestRejectsBadEnvelopes)
{
    auto codeOf = [](const std::string &line) {
        try {
            service::parseRequest(line);
        } catch (const ServiceError &e) {
            return e.code();
        }
        ADD_FAILURE() << "no throw for: " << line;
        return ServiceErrorCode::Internal;
    };
    EXPECT_EQ(codeOf("not json"), ServiceErrorCode::ParseError);
    EXPECT_EQ(codeOf("[1, 2]"), ServiceErrorCode::InvalidRequest);
    EXPECT_EQ(codeOf(R"({"method": "stats"})"),
              ServiceErrorCode::InvalidRequest); // Missing id.
    EXPECT_EQ(codeOf(R"({"id": [1], "method": "stats"})"),
              ServiceErrorCode::InvalidRequest); // Non-scalar id.
    EXPECT_EQ(codeOf(R"({"id": 1})"), ServiceErrorCode::InvalidRequest);
    EXPECT_EQ(codeOf(R"({"id": 1, "method": ""})"),
              ServiceErrorCode::InvalidRequest);
    EXPECT_EQ(codeOf(R"({"id": 1, "method": "stats", "params": 3})"),
              ServiceErrorCode::InvalidRequest);
    EXPECT_EQ(
        codeOf(R"({"id": 1, "method": "stats", "deadline_ms": -5})"),
        ServiceErrorCode::InvalidRequest);
}

TEST(ServiceProtocol, ErrorCodeNamesRoundTrip)
{
    for (ServiceErrorCode code :
         {ServiceErrorCode::ParseError, ServiceErrorCode::InvalidRequest,
          ServiceErrorCode::UnknownMethod,
          ServiceErrorCode::InvalidParams,
          ServiceErrorCode::DeadlineExceeded,
          ServiceErrorCode::Overloaded, ServiceErrorCode::ShuttingDown,
          ServiceErrorCode::WorkerFailed, ServiceErrorCode::Internal})
        EXPECT_EQ(service::errorCodeFromName(service::errorCodeName(code)),
                  code);
    EXPECT_THROW(service::errorCodeFromName("nope"),
                 std::invalid_argument);
}

TEST(ServiceProtocol, ResponseLinesRoundTrip)
{
    json::Value result = json::Value::object();
    result["x"] = 1.5;
    Response ok = service::parseResponse(
        service::makeResultLine(json::Value(3), result));
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.id.asNumber(), 3.0);
    EXPECT_EQ(ok.result.find("x")->asNumber(), 1.5);

    Response err = service::parseResponse(service::makeErrorLine(
        json::Value("rid"), ServiceErrorCode::Overloaded, "busy"));
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.id.asString(), "rid");
    EXPECT_EQ(err.errorCode, ServiceErrorCode::Overloaded);
    EXPECT_EQ(err.errorMessage, "busy");

    EXPECT_THROW(service::parseResponse("{}"), ServiceError);
    EXPECT_THROW(service::parseResponse("garbage"), ServiceError);
}

TEST(ServiceProtocol, GraphCodecRoundTripsAndValidates)
{
    Graph g = smallGraph();
    Graph back = service::graphFromJson(service::graphToJson(g));
    EXPECT_EQ(back.numNodes(), g.numNodes());
    EXPECT_TRUE(back.edges() == g.edges());

    auto reject = [](const std::string &json_text) {
        try {
            service::graphFromJson(json::Value::parse(json_text));
            ADD_FAILURE() << "accepted: " << json_text;
        } catch (const ServiceError &e) {
            EXPECT_EQ(e.code(), ServiceErrorCode::InvalidParams);
        }
    };
    reject("{\"edges\": []}");                        // Missing nodes.
    reject("{\"nodes\": 0, \"edges\": []}");          // Empty graph.
    reject("{\"nodes\": 3}");                         // Missing edges.
    reject("{\"nodes\": 3, \"edges\": [[0]]}");       // Not a pair.
    reject("{\"nodes\": 3, \"edges\": [[0, 3]]}");    // Out of range.
    reject("{\"nodes\": 3, \"edges\": [[1, 1]]}");    // Self-loop.
    reject("{\"nodes\": 3, \"edges\": [[0, 1.5]]}");  // Non-integer.
    reject("{\"nodes\": 100000, \"edges\": []}");     // Above the cap.
}

TEST(ServiceProtocol, PointsCodecRoundTripsAndValidates)
{
    Rng rng(3);
    std::vector<QaoaParams> points = randomParameterSets(2, 5, rng);
    std::vector<QaoaParams> back =
        service::pointsFromJson(service::pointsToJson(points));
    ASSERT_EQ(back.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(back[i].gamma, points[i].gamma);
        EXPECT_EQ(back[i].beta, points[i].beta);
    }

    auto reject = [](const std::string &json_text) {
        try {
            service::pointsFromJson(json::Value::parse(json_text));
            ADD_FAILURE() << "accepted: " << json_text;
        } catch (const ServiceError &e) {
            EXPECT_EQ(e.code(), ServiceErrorCode::InvalidParams);
        }
    };
    reject("[]");                       // Empty batch.
    reject("[[0.5]]");                  // Odd length.
    reject("[[0.5, 0.2], [0.1]]");      // Ragged depths.
    reject("[[0.5, \"x\"]]");           // Non-numeric.
    reject("[0.5, 0.2]");               // Not nested.
    {
        // One huge point must not smuggle an unbounded depth past the
        // size checks (the executor would wedge on a 500k-layer sim).
        std::string huge = "[[0.1";
        for (int i = 1; i < 2 * 65; ++i)
            huge += ", 0.1";
        huge += "]]";
        reject(huge);
    }
}

TEST(ServiceProtocol, NullSpecMembersMeanDefault)
{
    json::Value spec = json::Value::object();
    spec["noise"] = json::Value();  // Explicit null: use the default.
    spec["layers"] = json::Value();
    EvalSpec parsed = service::specFromJson(&spec);
    EXPECT_TRUE(parsed.noise.isIdeal());
    EXPECT_EQ(parsed.layers, 1);
}

TEST(ServiceProtocol, NoisePresetsResolve)
{
    EXPECT_EQ(service::noiseFromJson(json::Value("ibmq_kolkata")).name,
              "ibmq_kolkata");
    EXPECT_TRUE(service::noiseFromJson(json::Value("ideal")).isIdeal());
    json::Value scaled = json::Value::object();
    scaled["scaled"] = 2.0;
    EXPECT_EQ(service::noiseFromJson(scaled).name, "scaled");
    EXPECT_THROW(service::noiseFromJson(json::Value("fake_device")),
                 ServiceError);
    EXPECT_GE(service::noisePresetNames().size(), 9u);
}

// ---------------------------------------------------------------------
// Method round-trips: the service result equals the direct computation
// ---------------------------------------------------------------------

TEST(ServiceRoundTrip, EvaluateMatchesDirectEngineBitForBit)
{
    Graph g = smallGraph();
    Rng rng(11);
    std::vector<QaoaParams> points = randomParameterSets(2, 8, rng);

    ServiceServer server;
    json::Value result =
        resultOf(server.handleLine(evaluateRequest(1, g, points)));
    EXPECT_EQ(result.find("backend")->asString(), "statevector");

    std::vector<double> direct =
        EvalEngine().evaluate(g, EvalSpec::ideal(2), points);
    const json::Value &values = *result.find("values");
    ASSERT_EQ(values.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(values.asArray()[i].asNumber(), direct[i]) << i;
}

TEST(ServiceRoundTrip, EvaluateTrajectoryBackendMatchesDirect)
{
    Graph g = smallGraph();
    Rng rng(12);
    std::vector<QaoaParams> points = randomParameterSets(1, 6, rng);
    json::Value spec = json::Value::object();
    spec["backend"] = "trajectory";
    spec["noise"] = "ibmq_toronto";
    spec["trajectories"] = 5;
    spec["seed"] = 13;
    spec["shots"] = 64;

    ServiceServer server;
    json::Value result = resultOf(
        server.handleLine(evaluateRequest(1, g, points, std::move(spec))));
    EXPECT_EQ(result.find("backend")->asString(), "trajectory");

    NoisyEvaluator direct(g, noise::ibmToronto(), 5, 13, 64);
    std::vector<double> want = direct.batchExpectation(points);
    const json::Value &values = *result.find("values");
    ASSERT_EQ(values.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(values.asArray()[i].asNumber(), want[i]) << i;
}

TEST(ServiceRoundTrip, ReduceMatchesDirectReducer)
{
    Rng grng(21);
    Graph g = gen::connectedGnp(12, 0.4, grng);
    json::Value doc = json::Value::object();
    doc["id"] = 1;
    doc["method"] = "reduce";
    json::Value params = json::Value::object();
    params["graph"] = service::graphToJson(g);
    params["seed"] = 9;
    doc["params"] = std::move(params);

    ServiceServer server;
    json::Value result = resultOf(server.handleLine(doc.dump()));

    Rng direct_rng(9);
    ReductionResult direct = RedQaoaReducer().reduce(g, direct_rng);
    EXPECT_EQ(result.find("graph")->find("nodes")->asNumber(),
              direct.reduced.graph.numNodes());
    EXPECT_EQ(result.find("and_ratio")->asNumber(), direct.andRatio);
    EXPECT_EQ(result.find("annealer_runs")->asNumber(),
              direct.annealerRuns);
    const json::Value &to_original = *result.find("to_original");
    ASSERT_EQ(static_cast<int>(to_original.size()),
              direct.reduced.graph.numNodes());
    for (std::size_t i = 0; i < to_original.size(); ++i)
        EXPECT_EQ(to_original.asArray()[i].asNumber(),
                  direct.reduced.toOriginal[i]);
}

TEST(ServiceRoundTrip, OptimizeMatchesDirectMultiRestart)
{
    Graph g = smallGraph();
    json::Value doc = json::Value::object();
    doc["id"] = 1;
    doc["method"] = "optimize";
    json::Value params = json::Value::object();
    params["graph"] = service::graphToJson(g);
    params["restarts"] = 2;
    params["max_evaluations"] = 25;
    params["seed"] = 4;
    doc["params"] = std::move(params);

    ServiceServer server;
    json::Value result = resultOf(server.handleLine(doc.dump()));

    // The handler's exact recipe, run directly.
    EvalEngine engine;
    Objective obj = engine.objective(g, EvalSpec::ideal(1));
    OptOptions opts;
    opts.maxEvaluations = 25;
    Rng rng(4);
    auto runs = multiRestart(
        CobylaLite(opts), obj, 2,
        [](Rng &r) { return QaoaParams::random(1, r).flatten(); }, rng);
    std::size_t best = bestRun(runs);
    EXPECT_EQ(result.find("energy")->asNumber(), -runs[best].value);
    const json::Value &gamma = *result.find("params")->find("gamma");
    EXPECT_EQ(gamma.asArray()[0].asNumber(),
              QaoaParams::unflatten(runs[best].x).gamma[0]);
}

TEST(ServiceRoundTrip, PipelineMatchesDirectPipeline)
{
    Graph g = smallGraph(31);
    json::Value doc = json::Value::object();
    doc["id"] = 1;
    doc["method"] = "pipeline";
    json::Value params = json::Value::object();
    params["graph"] = service::graphToJson(g);
    json::Value options = json::Value::object();
    options["noise"] = "ibmq_kolkata";
    options["restarts"] = 2;
    options["search_evaluations"] = 12;
    options["refine_evaluations"] = 6;
    options["trajectories"] = 3;
    params["options"] = std::move(options);
    params["rng_seed"] = 6;
    doc["params"] = std::move(params);

    ServiceServer server;
    json::Value result = resultOf(server.handleLine(doc.dump()));

    PipelineOptions direct_opts;
    direct_opts.noise = noise::ibmKolkata();
    direct_opts.restarts = 2;
    direct_opts.searchEvaluations = 12;
    direct_opts.refineEvaluations = 6;
    direct_opts.trajectories = 3;
    Rng rng(6);
    PipelineResult direct = RedQaoaPipeline(direct_opts).run(g, rng);
    EXPECT_EQ(result.find("ideal_energy")->asNumber(),
              direct.idealEnergy);
    EXPECT_EQ(result.find("approx_ratio")->asNumber(),
              direct.approxRatio);
    EXPECT_EQ(result.find("max_cut")->asNumber(), direct.maxCut);
    EXPECT_EQ(result.find("reduced_nodes")->asNumber(),
              direct.reduction.reduced.graph.numNodes());
    EXPECT_EQ(result.find("flow")->asString(), "red-qaoa");
}

TEST(ServiceRoundTrip, FleetMatchesDirectFleetRuns)
{
    std::vector<std::pair<std::string, Graph>> graphs{
        {"a", smallGraph(41)}, {"b", smallGraph(42)}};
    json::Value doc = json::Value::object();
    doc["id"] = 1;
    doc["method"] = "fleet";
    json::Value params = json::Value::object();
    json::Value jgraphs = json::Value::array();
    for (const auto &[name, graph] : graphs) {
        json::Value entry = json::Value::object();
        entry["name"] = name;
        entry["graph"] = service::graphToJson(graph);
        jgraphs.push(std::move(entry));
    }
    params["graphs"] = std::move(jgraphs);
    json::Value noises = json::Value::array();
    noises.push(json::Value("ibmq_kolkata"));
    params["noises"] = std::move(noises);
    json::Value depths = json::Value::array();
    depths.push(json::Value(1));
    params["depths"] = std::move(depths);
    json::Value options = json::Value::object();
    options["restarts"] = 1;
    options["search_evaluations"] = 6;
    options["refine_evaluations"] = 3;
    options["trajectories"] = 2;
    params["options"] = std::move(options);
    params["seed0"] = 17;
    params["include_baseline"] = true;
    doc["params"] = std::move(params);

    ServiceServer server;
    json::Value result = resultOf(server.handleLine(doc.dump()));
    EXPECT_EQ(result.find("schema_version")->asNumber(), 1.0);
    EXPECT_EQ(result.find("tool")->asString(), "redqaoa_fleet");

    PipelineOptions base;
    base.noise = noise::ibmKolkata();
    base.restarts = 1;
    base.searchEvaluations = 6;
    base.refineEvaluations = 3;
    base.trajectories = 2;
    auto scenarios = PipelineFleet::grid(graphs, {noise::ibmKolkata()},
                                         {1}, base, 17, true);
    FleetReport direct = PipelineFleet().run(scenarios);
    // The deterministic portion of the report is byte-identical.
    EXPECT_EQ(result.find("runs")->dump(), direct.runsJson().dump());
}

TEST(ServiceRoundTrip, StatsSharesTheFleetReportEngineSchema)
{
    Graph g = smallGraph();
    Rng rng(2);
    ServiceServer server;
    resultOf(server.handleLine(
        evaluateRequest(1, g, randomParameterSets(1, 4, rng))));

    json::Value stats = resultOf(
        server.handleLine(R"({"id": 2, "method": "stats"})"));
    const json::Value *engine = stats.find("engine");
    ASSERT_NE(engine, nullptr);

    // One source of truth: the stats method's engine block and the
    // fleet report's metadata.engine expose the same key set.
    FleetReport empty_report;
    json::Value fleet_doc = empty_report.toJson();
    const json::Value &fleet_engine =
        *fleet_doc.find("metadata")->find("engine");
    ASSERT_EQ(engine->size(), fleet_engine.size());
    for (std::size_t i = 0; i < fleet_engine.asObject().size(); ++i)
        EXPECT_EQ(engine->asObject()[i].first,
                  fleet_engine.asObject()[i].first);

    EXPECT_EQ(engine->find("points")->asNumber(), 4.0);
    EXPECT_EQ(engine->find("jobs_drained")->asNumber(), 1.0);
    EXPECT_EQ(engine->find("drains")->asNumber(), 1.0);

    const json::Value *srv = stats.find("server");
    ASSERT_NE(srv, nullptr);
    EXPECT_EQ(srv->find("methods")->find("evaluate")->asNumber(), 1.0);
    EXPECT_GE(srv->find("latency")->find("p99_ms")->asNumber(),
              srv->find("latency")->find("p50_ms")->asNumber());
}

// ---------------------------------------------------------------------
// Error codes, deadlines, backpressure
// ---------------------------------------------------------------------

TEST(ServiceServerTest, MalformedRequestsGetTypedCodes)
{
    ServiceServer server;
    EXPECT_EQ(errorCodeOf(server.handleLine("{{{{")),
              ServiceErrorCode::ParseError);
    EXPECT_EQ(errorCodeOf(server.handleLine(R"({"method": "stats"})")),
              ServiceErrorCode::InvalidRequest);
    // An envelope rejection with a determinable id still echoes it.
    {
        Response bad_deadline = service::parseResponse(server.handleLine(
            R"({"id": 42, "method": "stats", "deadline_ms": -5})"));
        EXPECT_FALSE(bad_deadline.ok);
        EXPECT_EQ(bad_deadline.errorCode,
                  ServiceErrorCode::InvalidRequest);
        EXPECT_EQ(bad_deadline.id.asNumber(), 42.0);
    }
    EXPECT_EQ(errorCodeOf(server.handleLine(
                  R"({"id": 1, "method": "frobnicate"})")),
              ServiceErrorCode::UnknownMethod);
    EXPECT_EQ(errorCodeOf(server.handleLine(
                  R"({"id": 1, "method": "evaluate", "params": {}})")),
              ServiceErrorCode::InvalidParams);
    EXPECT_EQ(
        errorCodeOf(server.handleLine(
            R"({"id": 1, "method": "evaluate", "params": {"graph": {"nodes": 2, "edges": [[0,1]]}, "points": [[0.1]]}})")),
        ServiceErrorCode::InvalidParams);
    // A statevector request far beyond any backend's range.
    EXPECT_EQ(
        errorCodeOf(server.handleLine(
            R"({"id": 1, "method": "evaluate", "params": {"graph": {"nodes": 40, "edges": [[0,1]]}, "points": [[0.1, 0.2]], "spec": {"backend": "statevector"}}})")),
        ServiceErrorCode::InvalidParams);
    // Every response above was counted, none executed except by code.
    service::ServerStats stats = server.stats();
    EXPECT_EQ(stats.served, 7u);
    EXPECT_EQ(stats.errorCount, 7u);
    EXPECT_EQ(stats.rejectedParse, 3u);
}

TEST(ServiceServerTest, PinnedLayersMustMatchPointDepth)
{
    ServiceServer server;
    Graph g = smallGraph();
    Rng rng(61);
    json::Value spec = json::Value::object();
    spec["layers"] = 1;
    EXPECT_EQ(errorCodeOf(server.handleLine(evaluateRequest(
                  1, g, randomParameterSets(2, 3, rng), std::move(spec)))),
              ServiceErrorCode::InvalidParams);
}

/** A request that keeps the executor busy for a while (~seconds). */
std::string
slowRequest(int id)
{
    Rng rng(55);
    Graph g = gen::connectedGnp(16, 0.3, rng);
    return evaluateRequest(id, g, randomParameterSets(3, 96, rng));
}

TEST(ServiceServerTest, QueuedDeadlineExpiryIsReported)
{
    ServiceServer server;
    // The slow request occupies the executor; the dated request sits
    // behind it in the queue until far past its 1 ms deadline.
    std::future<std::string> slow = server.submitLine(slowRequest(1));
    json::Value doc = json::Value::object();
    doc["id"] = 2;
    doc["method"] = "stats";
    doc["deadline_ms"] = 0.001;
    std::future<std::string> dated = server.submitLine(doc.dump());

    EXPECT_EQ(errorCodeOf(dated.get()),
              ServiceErrorCode::DeadlineExceeded);
    resultOf(slow.get()); // The slow request itself succeeded.
    EXPECT_EQ(server.stats().expiredDeadline, 1u);

    // Without pressure ahead of it, the same deadline passes easily.
    json::Value relaxed = json::Value::object();
    relaxed["id"] = 3;
    relaxed["method"] = "stats";
    relaxed["deadline_ms"] = 60000.0;
    resultOf(server.handleLine(relaxed.dump()));
}

TEST(ServiceServerTest, FullAdmissionQueueAnswersOverloaded)
{
    service::ServerOptions opts;
    opts.queueCapacity = 1;
    ServiceServer server(opts);

    // Occupy the executor, then wait until it actually picked the job
    // up (dequeued == 1) so the queue state below is deterministic.
    std::future<std::string> slow = server.submitLine(slowRequest(1));
    for (int i = 0; i < 5000 && server.stats().dequeued < 1; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.stats().dequeued, 1u);

    // One request fills the capacity-1 queue; the next must bounce.
    std::future<std::string> queued =
        server.submitLine(R"({"id": 2, "method": "stats"})");
    std::future<std::string> bounced =
        server.submitLine(R"({"id": 3, "method": "stats"})");
    EXPECT_EQ(errorCodeOf(bounced.get()), ServiceErrorCode::Overloaded);

    resultOf(slow.get());
    resultOf(queued.get());
    service::ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejectedOverload, 1u);
    EXPECT_EQ(stats.okCount, 2u);
}

TEST(ServiceServerTest, ShutdownMethodStopsAdmission)
{
    ServiceServer server;
    json::Value ack = resultOf(
        server.handleLine(R"({"id": 1, "method": "shutdown"})"));
    EXPECT_TRUE(ack.find("stopping")->asBool());
    EXPECT_TRUE(server.shutdownRequested());
    EXPECT_EQ(errorCodeOf(server.handleLine(
                  R"({"id": 2, "method": "stats"})")),
              ServiceErrorCode::ShuttingDown);
    server.stop();
}

// ---------------------------------------------------------------------
// Determinism: same requests -> same payloads, any threads, any clients
// ---------------------------------------------------------------------

/** A mixed request set covering the deterministic methods. */
std::vector<std::string>
determinismRequests()
{
    std::vector<std::string> requests;
    Rng rng(314);
    std::vector<Graph> graphs{smallGraph(1), smallGraph(2),
                              smallGraph(3)};
    std::vector<std::vector<QaoaParams>> batches{
        randomParameterSets(1, 6, rng), randomParameterSets(2, 6, rng)};
    int id = 1;
    for (int round = 0; round < 2; ++round)
        for (std::size_t gi = 0; gi < graphs.size(); ++gi)
            for (std::size_t bi = 0; bi < batches.size(); ++bi)
                requests.push_back(
                    evaluateRequest(id++, graphs[gi], batches[bi]));
    // Noisy evaluation (whole-batch semantics).
    json::Value noisy_spec = json::Value::object();
    noisy_spec["noise"] = "ibmq_kolkata";
    noisy_spec["trajectories"] = 4;
    noisy_spec["seed"] = 5;
    requests.push_back(
        evaluateRequest(id++, graphs[0], batches[0], std::move(noisy_spec)));
    // Reduction and optimization.
    for (std::uint64_t seed : {3u, 4u}) {
        json::Value doc = json::Value::object();
        doc["id"] = id++;
        doc["method"] = "reduce";
        json::Value params = json::Value::object();
        params["graph"] = service::graphToJson(graphs[1]);
        params["seed"] = static_cast<std::size_t>(seed);
        doc["params"] = std::move(params);
        requests.push_back(doc.dump());
    }
    {
        json::Value doc = json::Value::object();
        doc["id"] = id++;
        doc["method"] = "optimize";
        json::Value params = json::Value::object();
        params["graph"] = service::graphToJson(graphs[2]);
        params["restarts"] = 2;
        params["max_evaluations"] = 15;
        params["seed"] = 8;
        doc["params"] = std::move(params);
        requests.push_back(doc.dump());
    }
    return requests;
}

/**
 * Submit @p requests from @p client_threads concurrent submitters
 * against a fresh server and return id -> response line.
 */
std::map<double, std::string>
runConcurrently(const std::vector<std::string> &requests,
                int client_threads)
{
    ServiceServer server;
    std::vector<std::vector<std::future<std::string>>> futures(
        static_cast<std::size_t>(client_threads));
    std::vector<std::thread> submitters;
    for (int c = 0; c < client_threads; ++c)
        submitters.emplace_back([&, c] {
            // Round-robin slices interleave admissions across threads.
            for (std::size_t i = static_cast<std::size_t>(c);
                 i < requests.size();
                 i += static_cast<std::size_t>(client_threads))
                futures[static_cast<std::size_t>(c)].push_back(
                    server.submitLine(requests[i]));
        });
    for (std::thread &t : submitters)
        t.join();

    std::map<double, std::string> by_id;
    for (auto &slice : futures)
        for (std::future<std::string> &future : slice) {
            std::string line = future.get();
            Response response = service::parseResponse(line);
            EXPECT_TRUE(response.ok) << line;
            by_id[response.id.asNumber()] = line;
        }
    return by_id;
}

TEST(ServiceDeterminism, SameRequestsSamePayloadsAtOneAndEightThreads)
{
    PoolGuard guard;
    std::vector<std::string> requests = determinismRequests();

    ThreadPool::setGlobalThreads(1);
    std::map<double, std::string> serial = runConcurrently(requests, 4);
    ASSERT_EQ(serial.size(), requests.size());

    ThreadPool::setGlobalThreads(8);
    std::map<double, std::string> parallel =
        runConcurrently(requests, 4);
    std::map<double, std::string> parallel_again =
        runConcurrently(requests, 2);

    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(parallel, parallel_again);
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

TEST(ServiceTcp, ConcurrentClientsGetDirectEngineValues)
{
    Graph g = smallGraph();
    Rng rng(19);
    std::vector<QaoaParams> points = randomParameterSets(1, 8, rng);
    std::vector<double> want =
        EvalEngine().evaluate(g, EvalSpec::ideal(1), points);

    ServiceServer server;
    TcpServiceListener listener(server, 0);
    ASSERT_GT(listener.port(), 0);

    std::vector<std::vector<double>> got(3);
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c)
        clients.emplace_back([&, c] {
            ServiceClient client =
                ServiceClient::connect(listener.port());
            service::EvaluateRequest req;
            req.graph = g;
            req.points = points;
            for (int repeat = 0; repeat < 3; ++repeat)
                got[static_cast<std::size_t>(c)] =
                    client.evaluate(req).values;
        });
    for (std::thread &t : clients)
        t.join();
    for (const std::vector<double> &values : got)
        EXPECT_EQ(values, want);

    // Typed errors cross the wire as the same taxonomy.
    ServiceClient client = ServiceClient::connect(listener.port());
    try {
        client.call("frobnicate");
        FAIL() << "unknown method did not throw";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), ServiceErrorCode::UnknownMethod);
    }

    json::Value stats = client.stats();
    EXPECT_GE(stats.find("server")->find("served")->asNumber(), 10.0);

    client.shutdown();
    EXPECT_TRUE(server.waitShutdownFor(10.0));
    listener.stop();
    server.stop();
    EXPECT_GE(server.stats().served, 12u);
}

TEST(ServiceTcp, OversizedRequestLineIsRefused)
{
    ServiceServer server;
    TcpServiceListener listener(server, 0);
    ServiceClient client = ServiceClient::connect(listener.port());

    // A single line just past the 8 MiB cap can never frame: the
    // server answers once with invalid_request and drops the
    // connection. (Only slightly past the cap, so the client's write
    // completes into kernel buffers even though the server stops
    // reading at the cap.)
    std::string huge((8u << 20) + 4096, 'x');
    std::string line = client.rawExchange(huge);
    EXPECT_EQ(errorCodeOf(line), ServiceErrorCode::InvalidRequest);

    listener.stop();
    server.stop();
}

// ---------------------------------------------------------------------
// Protocol v2: handshake, compat, sharding
// ---------------------------------------------------------------------

TEST(ServiceV2, HelloReportsServerCapabilities)
{
    service::ServerOptions opts;
    opts.shards = 3;
    opts.queueCapacity = 17;
    opts.maxConnections = 9;
    opts.idleTimeoutMs = 1234.0;
    ServiceServer server(opts);
    TcpServiceListener listener(server, 0);

    service::ConnectOptions copts;
    copts.port = listener.port();
    ServiceClient client = ServiceClient::connect(copts);
    EXPECT_EQ(client.schemaVersion(), service::kSchemaVersionV2);

    service::ServerInfo info = client.hello();
    EXPECT_EQ(info.server, "redqaoa_serve");
    EXPECT_EQ(info.schemaVersions, (std::vector<int>{1, 2}));
    EXPECT_EQ(info.shards, 3);
    EXPECT_EQ(info.queueCapacity, 17u);
    EXPECT_EQ(info.maxConnections, 9u);
    EXPECT_EQ(info.idleTimeoutMs, 1234.0);
    EXPECT_EQ(info.maxLineBytes, service::kMaxLineBytes);
    for (const char *method :
         {"evaluate", "hello", "pipeline", "shutdown", "stats"})
        EXPECT_NE(std::find(info.methods.begin(), info.methods.end(),
                            method),
                  info.methods.end())
            << "hello is missing method " << method;

    // The v2 response carried routing metadata.
    service::RouteInfo route;
    EXPECT_TRUE(client.lastRoute(route));
    EXPECT_GE(route.shard, 0);
    EXPECT_LT(route.shard, 3);

    listener.stop();
    server.stop();
}

TEST(ServiceV2, V1RequestsKeepTheV1ShapeOnAShardedServer)
{
    service::ServerOptions opts;
    opts.shards = 2;
    ServiceServer server(opts);

    Graph g = smallGraph();
    Rng rng(23);
    std::vector<QaoaParams> points = randomParameterSets(1, 5, rng);
    std::string v1_line = evaluateRequest(1, g, points);

    // A v1 request (no schema_version member) answers in the v1
    // shape: version 1 echoed, no route block.
    std::string v1_response = server.submitLine(v1_line).get();
    Response v1 = service::parseResponse(v1_response);
    EXPECT_TRUE(v1.ok);
    EXPECT_EQ(v1.schemaVersion, service::kSchemaVersion);
    EXPECT_FALSE(v1.hasRoute);
    EXPECT_EQ(v1_response.find("\"route\""), std::string::npos);

    // The same request stamped v2 gains routing metadata but the
    // result payload stays byte-identical.
    json::Value doc = json::Value::parse(v1_line);
    doc["schema_version"] = service::kSchemaVersionV2;
    Response v2 = service::parseResponse(server.submitLine(doc.dump()).get());
    EXPECT_TRUE(v2.ok);
    EXPECT_EQ(v2.schemaVersion, service::kSchemaVersionV2);
    EXPECT_TRUE(v2.hasRoute);
    EXPECT_GE(v2.route.shard, 0);
    EXPECT_LT(v2.route.shard, 2);
    EXPECT_GE(v2.route.queueMs, 0.0);
    EXPECT_EQ(v1.result.dump(), v2.result.dump());

    server.stop();
}

TEST(ServiceV2, ShardCountNeverChangesResponsePayloads)
{
    std::vector<Graph> graphs;
    for (std::uint64_t seed = 31; seed <= 36; ++seed)
        graphs.push_back(smallGraph(seed));
    Rng rng(29);
    std::vector<QaoaParams> points = randomParameterSets(1, 6, rng);

    std::vector<std::string> requests;
    for (std::size_t i = 0; i < graphs.size(); ++i)
        requests.push_back(
            evaluateRequest(static_cast<int>(i), graphs[i], points));

    // v1 requests produce fully byte-identical response lines at every
    // shard count: same results, same envelope, no routing metadata.
    std::vector<std::vector<std::string>> responses;
    for (int shards : {1, 2, 4}) {
        service::ServerOptions opts;
        opts.shards = shards;
        ServiceServer server(opts);
        std::vector<std::string> lines;
        for (const std::string &request : requests)
            lines.push_back(server.submitLine(request).get());
        responses.push_back(std::move(lines));
        server.stop();
    }
    EXPECT_EQ(responses[0], responses[1]);
    EXPECT_EQ(responses[0], responses[2]);
}

TEST(ServiceV2, StatsShardsShareTheAggregateKeySet)
{
    auto keysOf = [](const json::Value &doc) {
        std::vector<std::string> keys;
        for (const auto &member : doc.asObject())
            keys.push_back(member.first);
        return keys;
    };

    service::ServerOptions opts;
    opts.shards = 2;
    ServiceServer server(opts);
    TcpServiceListener listener(server, 0);
    service::ConnectOptions copts;
    copts.port = listener.port();
    ServiceClient client = ServiceClient::connect(copts);

    Graph g = smallGraph();
    Rng rng(41);
    service::EvaluateRequest eval;
    eval.graph = g;
    eval.points = randomParameterSets(1, 4, rng);
    client.evaluate(eval);

    // One stats shape everywhere: the aggregate engine block and every
    // per-shard block expose exactly the same key set.
    json::Value stats = client.stats();
    const json::Value *engine = stats.find("engine");
    const json::Value *shards = stats.find("shards");
    ASSERT_NE(engine, nullptr);
    ASSERT_NE(shards, nullptr);
    ASSERT_EQ(shards->size(), 2u);
    std::vector<std::string> want = keysOf(*engine);
    EXPECT_FALSE(want.empty());
    for (const json::Value &shard : shards->asArray())
        EXPECT_EQ(keysOf(shard), want);

    // The fleet report's metadata.engine block reuses the same shape.
    json::Value fleet_params = json::Value::object();
    json::Value fleet_graphs = json::Value::array();
    json::Value entry = json::Value::object();
    entry["name"] = "g0";
    entry["graph"] = service::graphToJson(smallGraph(43));
    fleet_graphs.push(std::move(entry));
    fleet_params["graphs"] = std::move(fleet_graphs);
    json::Value fleet_opts = json::Value::object();
    fleet_opts["restarts"] = 1;
    fleet_opts["search_evaluations"] = 6;
    fleet_opts["refine_evaluations"] = 2;
    fleet_params["options"] = std::move(fleet_opts);
    json::Value fleet = client.call("fleet", std::move(fleet_params));
    const json::Value *meta_engine =
        fleet.find("metadata")->find("engine");
    ASSERT_NE(meta_engine, nullptr);
    EXPECT_EQ(keysOf(*meta_engine), want);

    // A v1 client sees no shards block (v1 shape preserved).
    ServiceClient v1 = ServiceClient::connect(listener.port());
    json::Value v1_stats = v1.stats();
    EXPECT_NE(v1_stats.find("engine"), nullptr);
    EXPECT_EQ(v1_stats.find("shards"), nullptr);

    listener.stop();
    server.stop();
}

// ---------------------------------------------------------------------
// Transport hardening
// ---------------------------------------------------------------------

TEST(ServiceTcp, IdleConnectionsAreEvicted)
{
    service::ServerOptions opts;
    opts.idleTimeoutMs = 50.0;
    ServiceServer server(opts);
    TcpServiceListener listener(server, 0);

    service::ConnectOptions copts;
    copts.port = listener.port();
    ServiceClient client = ServiceClient::connect(copts);
    client.hello(); // The connection works while active.

    // Go idle past the timeout: the server closes the connection, so
    // the next exchange fails at the transport layer.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    EXPECT_THROW(client.hello(), std::runtime_error);

    listener.stop();
    server.stop();
}

TEST(ServiceTcp, ConnectionLimitBouncesWithTypedOverloaded)
{
    service::ServerOptions opts;
    opts.maxConnections = 1;
    ServiceServer server(opts);
    TcpServiceListener listener(server, 0);

    service::ConnectOptions copts;
    copts.port = listener.port();
    ServiceClient first = ServiceClient::connect(copts);
    first.hello(); // Occupies the single slot.

    // The next connection is accepted just long enough to answer one
    // typed `overloaded` error line, then closed.
    ServiceClient second = ServiceClient::connect(copts);
    std::string line = second.rawExchange("ping");
    EXPECT_EQ(errorCodeOf(line), ServiceErrorCode::Overloaded);
    EXPECT_GE(listener.bouncedConnections(), 1u);

    // The admitted connection keeps working.
    first.hello();

    listener.stop();
    server.stop();
}

TEST(ServiceTcp, DisconnectMidResponseDoesNotWedgeTheServer)
{
    ServiceServer server;
    TcpServiceListener listener(server, 0);

    Graph g = smallGraph();
    Rng rng(47);
    std::vector<QaoaParams> points = randomParameterSets(1, 16, rng);
    std::string request = evaluateRequest(1, g, points);

    // Clients that send a request and vanish before reading the
    // response: the write side hits EPIPE/ECONNRESET, which must tear
    // the connection down cleanly instead of wedging the server.
    for (int round = 0; round < 8; ++round) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(listener.port()));
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof addr),
                  0);
        ASSERT_TRUE(service::detail::writeLine(fd, request));
        ::close(fd); // Gone before the response exists.
    }

    // The server still serves fresh connections afterwards...
    ServiceClient client = ServiceClient::connect(listener.port());
    std::vector<double> want =
        EvalEngine().evaluate(g, EvalSpec::ideal(1), points);
    EXPECT_EQ(resultOf(client.rawExchange(request))
                  .find("values")
                  ->size(),
              want.size());

    // ...and shutdown completes promptly (a wedged writer would hang
    // here until the test times out).
    client.shutdown();
    EXPECT_TRUE(server.waitShutdownFor(10.0));
    listener.stop();
    server.stop();
}

TEST(ServiceTcp, ConnectRetriesWithBoundedBackoff)
{
    // Reserve a port with no listener behind it.
    int probe = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(probe, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr *>(&addr),
                     sizeof addr),
              0);
    socklen_t len = sizeof addr;
    ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    int dead_port = ntohs(addr.sin_port);
    ::close(probe);

    service::ConnectOptions copts;
    copts.port = dead_port;
    copts.maxAttempts = 3;
    copts.backoffInitialMs = 5.0;
    copts.backoffMaxMs = 20.0;
    auto start = std::chrono::steady_clock::now();
    try {
        ServiceClient::connect(copts);
        FAIL() << "connect to a dead port did not throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("3 attempt(s)"),
                  std::string::npos)
            << e.what();
    }
    std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    // Two sleeps happened between the three attempts: 5 ms then 10 ms.
    EXPECT_GE(elapsed.count(), 10.0);
}

// ---------------------------------------------------------------------
// Health: the inline liveness probe
// ---------------------------------------------------------------------

TEST(ServiceHealth, HealthAnswersInlineUnderAFullQueue)
{
    service::ServerOptions opts;
    opts.queueCapacity = 1;
    ServiceServer server(opts);

    // Occupy the executor and fill the capacity-1 queue: a queued
    // probe would now sit behind seconds of work, so only an inline
    // answer can double as a liveness signal.
    std::future<std::string> slow = server.submitLine(slowRequest(1));
    for (int i = 0; i < 5000 && server.stats().dequeued < 1; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.stats().dequeued, 1u);
    std::future<std::string> queued =
        server.submitLine(R"({"id": 2, "method": "stats"})");

    auto start = std::chrono::steady_clock::now();
    json::Value health = resultOf(
        server.handleLine(R"({"id": 3, "method": "health"})"));
    std::chrono::duration<double, std::milli> probe_ms =
        std::chrono::steady_clock::now() - start;
    EXPECT_LT(probe_ms.count(), 1000.0); // Did not wait for the queue.

    EXPECT_EQ(health.find("status")->asString(), "ok");
    EXPECT_GE(health.find("uptime_seconds")->asNumber(), 0.0);
    EXPECT_EQ(health.find("pid")->asNumber(),
              static_cast<double>(::getpid()));
    EXPECT_EQ(health.find("shards")->asNumber(), 1.0);
    ASSERT_EQ(health.find("queue_depths")->size(), 1u);
    EXPECT_GE(health.find("in_flight")->asNumber(), 1.0);

    resultOf(slow.get());
    resultOf(queued.get());
    // With the pipeline drained, in-flight returns to zero.
    json::Value after = resultOf(
        server.handleLine(R"({"id": 4, "method": "health"})"));
    EXPECT_EQ(after.find("in_flight")->asNumber(), 0.0);
    server.stop();
}

TEST(ServiceHealth, HealthReportsStoppingWhileDraining)
{
    ServiceServer server;
    resultOf(server.handleLine(R"({"id": 1, "method": "shutdown"})"));
    // Regular admission is closed, but the probe still answers — a
    // supervisor must be able to watch a worker drain.
    json::Value health = resultOf(
        server.handleLine(R"({"id": 2, "method": "health"})"));
    EXPECT_EQ(health.find("status")->asString(), "stopping");
    server.stop();
}

TEST(ServiceHealth, HelloAdvertisesTheHealthMethod)
{
    ServiceServer server;
    TcpServiceListener listener(server, 0);
    service::ConnectOptions copts;
    copts.port = listener.port();
    ServiceClient client = ServiceClient::connect(copts);
    service::ServerInfo info = client.hello();
    EXPECT_NE(std::find(info.methods.begin(), info.methods.end(),
                        "health"),
              info.methods.end());
    listener.stop();
    server.stop();
}

// ---------------------------------------------------------------------
// Client retry semantics
// ---------------------------------------------------------------------

TEST(ServiceRetry, RetryableCodesAreExactlyOverloadedAndWorkerFailed)
{
    // The retry whitelist is a contract, not a heuristic: only errors
    // the server emits BEFORE executing (overloaded bounce) or that
    // the lb emits for maybe-executed-but-pure requests (worker_failed)
    // are safe to resend blindly.
    for (ServiceErrorCode code :
         {ServiceErrorCode::ParseError, ServiceErrorCode::InvalidRequest,
          ServiceErrorCode::UnknownMethod,
          ServiceErrorCode::InvalidParams,
          ServiceErrorCode::DeadlineExceeded,
          ServiceErrorCode::ShuttingDown, ServiceErrorCode::Internal})
        EXPECT_FALSE(ServiceClient::retryableCode(code))
            << service::errorCodeName(code);
    EXPECT_TRUE(ServiceClient::retryableCode(ServiceErrorCode::Overloaded));
    EXPECT_TRUE(
        ServiceClient::retryableCode(ServiceErrorCode::WorkerFailed));
}

TEST(ServiceRetry, ConnectBackoffScheduleIsSeededAndJittered)
{
    service::ConnectOptions copts;
    copts.maxAttempts = 5;
    copts.backoffInitialMs = 8.0;
    copts.backoffMaxMs = 20.0;
    copts.backoffSeed = 99;

    // Same seed -> same schedule (tests can pin chaos timing).
    std::vector<double> a = ServiceClient::connectBackoffSchedule(copts, 4);
    std::vector<double> b = ServiceClient::connectBackoffSchedule(copts, 4);
    EXPECT_EQ(a, b);
    // Jitter stays within [0.5, 1.5) of the doubling, capped base.
    const double bases[] = {8.0, 16.0, 20.0, 20.0};
    ASSERT_EQ(a.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(a[i], 0.5 * bases[i]) << i;
        EXPECT_LT(a[i], 1.5 * bases[i]) << i;
    }

    // A different seed jitters differently; no jitter means the exact
    // base schedule (and full determinism without pinning a seed).
    copts.backoffSeed = 100;
    EXPECT_NE(ServiceClient::connectBackoffSchedule(copts, 4), a);
    copts.backoffJitter = false;
    std::vector<double> flat =
        ServiceClient::connectBackoffSchedule(copts, 4);
    EXPECT_EQ(flat, std::vector<double>(bases, bases + 4));
}

/** Evaluate params for client.call (same content as evaluateRequest). */
json::Value
evaluateParams(const Graph &g, const std::vector<QaoaParams> &points)
{
    json::Value params = json::Value::object();
    params["graph"] = service::graphToJson(g);
    params["points"] = service::pointsToJson(points);
    return params;
}

/**
 * The payload a retrying client obtains from a server whose transport
 * injects @p fault_spec, which must be byte-identical to the fault-free
 * payload for the same request. Exercises the full client retry loop:
 * typed `overloaded` bounces retry on the same connection, resets and
 * torn frames reconnect first.
 */
std::string
chaosPayload(const std::string &fault_spec, const Graph &g,
             const std::vector<QaoaParams> &points)
{
    service::FaultPlane faults(fault_spec);
    ServiceServer server;
    TcpServiceListener listener(server, 0, &faults);

    service::ConnectOptions copts;
    copts.port = listener.port();
    copts.maxRetries = 3;
    copts.retryBackoffInitialMs = 1.0;
    copts.retryBackoffMaxMs = 5.0;
    copts.backoffSeed = 7;
    ServiceClient client = ServiceClient::connect(copts);
    json::Value result = client.call("evaluate", evaluateParams(g, points));
    std::string payload = result.dump();
    EXPECT_GT(faults.injectedCount(), 0u) << fault_spec;
    listener.stop();
    server.stop();
    return payload;
}

TEST(ServiceRetry, InjectedFaultsAreAbsorbedWithByteIdenticalPayloads)
{
    Graph g = smallGraph(71);
    Rng rng(72);
    std::vector<QaoaParams> points = randomParameterSets(1, 6, rng);

    // Fault-free baseline through the same code path.
    std::string baseline;
    {
        ServiceServer server;
        TcpServiceListener listener(server, 0);
        service::ConnectOptions copts;
        copts.port = listener.port();
        ServiceClient client = ServiceClient::connect(copts);
        baseline =
            client.call("evaluate", evaluateParams(g, points)).dump();
        listener.stop();
        server.stop();
    }

    // overload@1: the first eligible request bounces with the typed
    // `overloaded` error; the retry succeeds on the same connection.
    EXPECT_EQ(chaosPayload("overload@1", g, points), baseline);
    // reset@1: the connection dies before any response; the client
    // reconnects and resends (the request was never admitted).
    EXPECT_EQ(chaosPayload("reset@1", g, points), baseline);
    // truncate@1: half a response line, then a reset — the torn frame
    // must be thrown away, never parsed.
    EXPECT_EQ(chaosPayload("truncate@1", g, points), baseline);
}

TEST(ServiceRetry, RetryCountersAndNonRetryableErrorsAreHonest)
{
    Graph g = smallGraph(73);
    Rng rng(74);
    std::vector<QaoaParams> points = randomParameterSets(1, 4, rng);

    service::FaultPlane faults("overload@1;reset@2");
    ServiceServer server;
    TcpServiceListener listener(server, 0, &faults);
    service::ConnectOptions copts;
    copts.port = listener.port();
    copts.maxRetries = 4;
    copts.retryBackoffInitialMs = 1.0;
    copts.backoffSeed = 11;
    ServiceClient client = ServiceClient::connect(copts);

    // Attempt 1 bounces (overload@1), attempt 2 is reset mid-flight
    // (reset@2), attempt 3 succeeds after a reconnect.
    json::Value result =
        client.call("evaluate", evaluateParams(g, points));
    EXPECT_NE(result.find("values"), nullptr);
    EXPECT_EQ(client.retriesIssued(), 2u);
    EXPECT_EQ(client.reconnects(), 1u);

    // Non-retryable errors surface immediately, despite the budget.
    try {
        client.call("frobnicate");
        FAIL() << "unknown method did not throw";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), ServiceErrorCode::UnknownMethod);
    }
    EXPECT_EQ(client.retriesIssued(), 2u); // No retry was spent on it.

    listener.stop();
    server.stop();
}

TEST(ServiceRetry, ZeroMaxRetriesSurfacesRetryableErrors)
{
    service::FaultPlane faults("overload@1");
    ServiceServer server;
    TcpServiceListener listener(server, 0, &faults);
    ServiceClient client = ServiceClient::connect(listener.port());
    try {
        client.call("stats");
        FAIL() << "injected overload did not throw without a budget";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), ServiceErrorCode::Overloaded);
    }
    listener.stop();
    server.stop();
}

// ---------------------------------------------------------------------
// The lb fleet proxy, driven against in-process fake workers
// ---------------------------------------------------------------------

/**
 * WorkerDirectory over in-process ServiceServer-backed lanes: killing
 * a lane stops its listener (from the fleet's side this is
 * indistinguishable from a dead process), reviving it brings up a
 * fresh server on a fresh port with a bumped generation. An optional
 * per-lane fault plane chaoses the worker transport; the plane
 * persists across revives, so one-shot schedules fire once per test.
 */
class TestWorkerDirectory : public service::WorkerDirectory
{
  public:
    explicit TestWorkerDirectory(std::size_t lanes,
                                 const std::string &fault_spec = "")
    {
        for (std::size_t i = 0; i < lanes; ++i) {
            auto lane = std::make_unique<Lane>();
            if (!fault_spec.empty())
                lane->faults.configure(fault_spec);
            startLane(*lane);
            lanes_.push_back(std::move(lane));
        }
    }

    ~TestWorkerDirectory() override
    {
        for (auto &lane : lanes_)
            stopLane(*lane);
    }

    std::size_t workerCount() const override { return lanes_.size(); }

    service::LaneState endpoint(std::size_t index,
                                service::WorkerEndpoint &out) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Lane &lane = *lanes_[index];
        if (lane.state == service::LaneState::Up) {
            out.port = lane.listener->port();
            out.generation = lane.generation;
        }
        return lane.state;
    }

    void reportFailure(std::size_t index,
                       std::uint64_t generation) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (generation == lanes_[index]->generation)
            ++failureReports_;
    }

    json::Value statusJson() const override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        json::Value arr = json::Value::array();
        for (const auto &lane : lanes_) {
            json::Value entry = json::Value::object();
            entry["state"] =
                lane->state == service::LaneState::Up
                    ? "up"
                    : lane->state == service::LaneState::Failed
                          ? "failed"
                          : "restarting";
            entry["generation"] =
                static_cast<std::size_t>(lane->generation);
            arr.push(std::move(entry));
        }
        return arr;
    }

    void kill(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopLane(*lanes_[index]);
        lanes_[index]->state = service::LaneState::Restarting;
    }

    void revive(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Lane &lane = *lanes_[index];
        startLane(lane);
        ++lane.generation;
        lane.state = service::LaneState::Up;
    }

    void failPermanently(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopLane(*lanes_[index]);
        lanes_[index]->state = service::LaneState::Failed;
    }

    std::uint64_t failureReports() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return failureReports_;
    }

  private:
    struct Lane
    {
        std::unique_ptr<ServiceServer> server;
        std::unique_ptr<TcpServiceListener> listener;
        service::FaultPlane faults;
        std::uint64_t generation = 1;
        service::LaneState state = service::LaneState::Up;
    };

    void startLane(Lane &lane)
    {
        lane.server = std::make_unique<ServiceServer>();
        lane.listener = std::make_unique<TcpServiceListener>(
            *lane.server, 0, &lane.faults);
    }

    void stopLane(Lane &lane)
    {
        if (lane.listener)
            lane.listener->stop();
        if (lane.server)
            lane.server->stop();
    }

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::uint64_t failureReports_ = 0;
};

/** submitLine returning a future (the fleet's callback adapted). */
std::future<std::string>
submitTo(service::WorkerFleetService &fleet, std::string line)
{
    auto promise = std::make_shared<std::promise<std::string>>();
    std::future<std::string> future = promise->get_future();
    fleet.submitLine(std::move(line), [promise](std::string response) {
        promise->set_value(std::move(response));
    });
    return future;
}

double
laneQueueDepth(const service::WorkerFleetService &fleet)
{
    return fleet.healthResult()
        .find("queue_depths")
        ->asArray()[0]
        .asNumber();
}

TEST(ServiceFleet, RelaysWorkerResponsesVerbatim)
{
    Graph g = smallGraph(81);
    Rng rng(82);
    std::string request =
        evaluateRequest(1, g, randomParameterSets(1, 5, rng));
    std::string direct = ServiceServer().handleLine(request);

    TestWorkerDirectory workers(2);
    service::WorkerFleetService fleet(workers);
    EXPECT_EQ(submitTo(fleet, request).get(), direct);
    // Same request again: same lane, same bytes (routing is by graph
    // hash, so placement is a pure function of the request too).
    EXPECT_EQ(submitTo(fleet, request).get(), direct);
    fleet.stop();
}

TEST(ServiceFleet, AnswersTheControlPlaneItself)
{
    TestWorkerDirectory workers(2);
    service::WorkerFleetService fleet(workers);

    json::Value hello = resultOf(
        submitTo(fleet, R"({"id": 1, "method": "hello"})").get());
    EXPECT_EQ(hello.find("server")->asString(), "redqaoa_lb");
    EXPECT_EQ(hello.find("workers")->asNumber(), 2.0);

    json::Value health = resultOf(
        submitTo(fleet, R"({"id": 2, "method": "health"})").get());
    EXPECT_EQ(health.find("status")->asString(), "ok");
    EXPECT_EQ(health.find("role")->asString(), "lb");
    EXPECT_EQ(health.find("workers")->size(), 2u);
    EXPECT_EQ(health.find("queue_depths")->size(), 2u);

    // Protocol shutdown stops the lb, not just a worker.
    json::Value ack = resultOf(
        submitTo(fleet, R"({"id": 3, "method": "shutdown"})").get());
    EXPECT_TRUE(ack.find("stopping")->asBool());
    EXPECT_TRUE(fleet.waitShutdownFor(5.0));
    fleet.stop();
}

TEST(ServiceFleet, ReplaysAcrossATornForwardByteIdentically)
{
    Graph g = smallGraph(83);
    Rng rng(84);
    std::string request =
        evaluateRequest(1, g, randomParameterSets(1, 5, rng));
    std::string direct = ServiceServer().handleLine(request);

    // The lane's worker transport resets the first forwarded request:
    // the forwarder must report the failure, reconnect, and replay —
    // and the client-visible line must not change by a byte.
    TestWorkerDirectory workers(1, "reset@1");
    service::WorkerFleetService fleet(workers);
    EXPECT_EQ(submitTo(fleet, request).get(), direct);
    EXPECT_GE(workers.failureReports(), 1u);
    json::Value health = fleet.healthResult();
    EXPECT_GE(health.find("replays")->asNumber(), 1.0);
    EXPECT_EQ(health.find("worker_failures")->asNumber(), 0.0);
    fleet.stop();
}

TEST(ServiceFleet, ReplaysAcrossAWorkerRestartByteIdentically)
{
    Graph g = smallGraph(85);
    Rng rng(86);
    std::string request =
        evaluateRequest(1, g, randomParameterSets(1, 5, rng));
    std::string direct = ServiceServer().handleLine(request);

    TestWorkerDirectory workers(1);
    service::WorkerFleetService fleet(workers);
    // Warm the lane, then kill the worker under the fleet's feet.
    EXPECT_EQ(submitTo(fleet, request).get(), direct);
    workers.kill(0);
    std::future<std::string> held = submitTo(fleet, request);
    // The forwarder is now waiting out the "restart"; the response
    // must not exist yet.
    EXPECT_EQ(held.wait_for(std::chrono::milliseconds(100)),
              std::future_status::timeout);
    workers.revive(0);
    // A new generation on a new port — and the same bytes.
    EXPECT_EQ(held.get(), direct);
    fleet.stop();
}

TEST(ServiceFleet, ExhaustedReplayBudgetAnswersWorkerFailed)
{
    Graph g = smallGraph(87);
    Rng rng(88);
    std::string request =
        evaluateRequest(1, g, randomParameterSets(1, 4, rng));

    // Every forwarded request is reset (reset@1/1): with a budget of
    // 2 attempts the fleet must give up with the typed retryable
    // error instead of spinning forever.
    TestWorkerDirectory workers(1, "reset@1/1");
    service::FleetOptions opts;
    opts.replayBudget = 2;
    service::WorkerFleetService fleet(workers, opts);
    std::string line = submitTo(fleet, request).get();
    EXPECT_EQ(errorCodeOf(line), ServiceErrorCode::WorkerFailed);
    EXPECT_EQ(fleet.healthResult().find("worker_failures")->asNumber(),
              1.0);
    fleet.stop();
}

TEST(ServiceFleet, PermanentlyFailedLaneAnswersWorkerFailed)
{
    Graph g = smallGraph(89);
    Rng rng(90);
    std::string request =
        evaluateRequest(1, g, randomParameterSets(1, 4, rng));

    TestWorkerDirectory workers(1);
    workers.failPermanently(0);
    service::WorkerFleetService fleet(workers);
    EXPECT_EQ(errorCodeOf(submitTo(fleet, request).get()),
              ServiceErrorCode::WorkerFailed);
    fleet.stop();
}

TEST(ServiceFleet, FullLaneQueueBouncesOverloaded)
{
    Graph g = smallGraph(91);
    Rng rng(92);
    std::vector<QaoaParams> points = randomParameterSets(1, 4, rng);

    TestWorkerDirectory workers(1);
    service::FleetOptions opts;
    opts.server.queueCapacity = 1;
    service::WorkerFleetService fleet(workers, opts);

    // With the lane down, the first request is picked up by the
    // forwarder (in flight, waiting), the second fills the
    // capacity-1 queue, and the third must bounce immediately.
    workers.kill(0);
    std::future<std::string> first =
        submitTo(fleet, evaluateRequest(1, g, points));
    for (int i = 0; i < 5000 && laneQueueDepth(fleet) > 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(laneQueueDepth(fleet), 0.0);
    std::future<std::string> second =
        submitTo(fleet, evaluateRequest(2, g, points));
    std::future<std::string> third =
        submitTo(fleet, evaluateRequest(3, g, points));
    EXPECT_EQ(errorCodeOf(third.get()), ServiceErrorCode::Overloaded);

    // Revival drains the backlog: exactly one ok answer each.
    workers.revive(0);
    resultOf(first.get());
    resultOf(second.get());
    fleet.stop();
}

TEST(ServiceFleet, StopDrainsEveryQueuedRequestWithATypedAnswer)
{
    Graph g = smallGraph(93);
    Rng rng(94);
    std::vector<QaoaParams> points = randomParameterSets(1, 4, rng);

    TestWorkerDirectory workers(1);
    service::WorkerFleetService fleet(workers);
    workers.kill(0); // Everything below queues or waits.
    std::vector<std::future<std::string>> futures;
    for (int id = 1; id <= 3; ++id)
        futures.push_back(
            submitTo(fleet, evaluateRequest(id, g, points)));
    fleet.stop();
    // No request is dropped on the floor: the in-flight one and every
    // queued one get exactly one typed shutting_down answer (the
    // future would throw broken_promise if the callback never ran).
    for (std::future<std::string> &future : futures)
        EXPECT_EQ(errorCodeOf(future.get()),
                  ServiceErrorCode::ShuttingDown);
}

TEST(ServiceFleet, DeadlinedRequestsExpireWhileWaitingOutARestart)
{
    Graph g = smallGraph(95);
    Rng rng(96);
    json::Value doc =
        json::Value::parse(evaluateRequest(1, g, randomParameterSets(1, 4, rng)));
    doc["deadline_ms"] = 50.0;

    TestWorkerDirectory workers(1);
    service::WorkerFleetService fleet(workers);
    workers.kill(0);
    // The lane never comes back within the deadline: the fleet must
    // answer deadline_exceeded instead of holding the request.
    EXPECT_EQ(errorCodeOf(submitTo(fleet, doc.dump()).get()),
              ServiceErrorCode::DeadlineExceeded);
    fleet.stop();
}

// ---------------------------------------------------------------------
// Observability: request tracing + metrics plane
// ---------------------------------------------------------------------

std::string
optimizeRequest(int id, const Graph &g, int schema_version,
                const json::Value &trace = json::Value())
{
    json::Value doc = json::Value::object();
    doc["id"] = id;
    doc["method"] = "optimize";
    doc["schema_version"] = schema_version;
    if (!trace.isNull())
        doc["trace"] = trace;
    json::Value params = json::Value::object();
    params["graph"] = service::graphToJson(g);
    params["restarts"] = 2;
    params["max_evaluations"] = 20;
    params["seed"] = 4;
    doc["params"] = std::move(params);
    return doc.dump();
}

std::map<std::string, std::string>
spanParents(const json::Value &trace)
{
    std::map<std::string, std::string> out;
    for (const json::Value &span : trace.find("spans")->asArray())
        out[span.find("name")->asString()] =
            span.find("parent")->asString();
    return out;
}

TEST(ServiceTracing, TraceRequiresSchemaV2)
{
    ServiceServer server;
    json::Value doc = json::Value::parse(
        optimizeRequest(1, smallGraph(), 1));
    doc["trace"] = true;
    EXPECT_EQ(errorCodeOf(server.handleLine(doc.dump())),
              ServiceErrorCode::InvalidRequest);
}

TEST(ServiceTracing, WorkerTraceCoversTheExecutionStages)
{
    Graph g = smallGraph(101);
    ServiceServer server;
    const std::string untraced =
        server.handleLine(optimizeRequest(1, g, 2));
    EXPECT_EQ(untraced.find("\"trace\""), std::string::npos);

    const std::string traced = server.handleLine(
        optimizeRequest(1, g, 2, json::Value("my-trace-id")));
    json::Value doc = json::Value::parse(traced);
    const json::Value *trace = doc.find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->find("id")->asString(), "my-trace-id");
    EXPECT_GT(trace->find("total_us")->asNumber(), 0.0);

    auto parents = spanParents(*trace);
    ASSERT_TRUE(parents.count("worker.admission"));
    ASSERT_TRUE(parents.count("shard.queue"));
    ASSERT_TRUE(parents.count("worker.execute"));
    ASSERT_TRUE(parents.count("store.lookup"));
    ASSERT_TRUE(parents.count("backend.evaluate"));
    ASSERT_TRUE(parents.count("optimize.restarts"));
    EXPECT_EQ(parents["worker.admission"], "");
    EXPECT_EQ(parents["shard.queue"], "worker.admission");
    EXPECT_EQ(parents["worker.execute"], "worker.admission");
    EXPECT_EQ(parents["backend.evaluate"], "worker.execute");

    // Tracing must never perturb the computation: the result member
    // is byte-identical with tracing on and off.
    EXPECT_EQ(resultOf(traced).dump(), resultOf(untraced).dump());

    // A bare `trace: true` mints an id.
    json::Value minted = json::Value::parse(server.handleLine(
        optimizeRequest(1, g, 2, json::Value(true))));
    EXPECT_FALSE(minted.find("trace")->find("id")->asString().empty());
}

TEST(ServiceTracing, SlowlogRetainsTracedRequests)
{
    ServiceServer server;
    server.handleLine(
        optimizeRequest(1, smallGraph(103), 2, json::Value("slow-1")));
    json::Value slowlog = resultOf(server.handleLine(
        R"({"id": 2, "method": "slowlog", "schema_version": 2})"));
    EXPECT_EQ(slowlog.find("captured")->asNumber(), 1.0);
    const auto &entries = slowlog.find("slowlog")->asArray();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].find("id")->asString(), "slow-1");
}

TEST(ServiceTracing, FleetTraceCoversEveryHop)
{
    Graph g = smallGraph(105);
    const std::string direct =
        ServiceServer().handleLine(optimizeRequest(1, g, 2));

    TestWorkerDirectory workers(2);
    service::WorkerFleetService fleet(workers);
    const std::string traced =
        submitTo(fleet, optimizeRequest(1, g, 2, json::Value(true)))
            .get();
    json::Value doc = json::Value::parse(traced);
    const json::Value *trace = doc.find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_FALSE(trace->find("id")->asString().empty());

    // The acceptance contract: spans cover lb queue -> lane forward
    // -> worker admission -> shard queue -> backend evaluate.
    auto parents = spanParents(*trace);
    ASSERT_TRUE(parents.count("lb.queue"));
    ASSERT_TRUE(parents.count("lb.forward"));
    ASSERT_TRUE(parents.count("worker.admission"));
    ASSERT_TRUE(parents.count("shard.queue"));
    ASSERT_TRUE(parents.count("backend.evaluate"));
    EXPECT_EQ(parents["lb.queue"], "");
    EXPECT_EQ(parents["lb.forward"], "");
    // The worker's root is re-parented under the lb's forward span.
    EXPECT_EQ(parents["worker.admission"], "lb.forward");
    EXPECT_EQ(parents["shard.queue"], "worker.admission");
    EXPECT_EQ(parents["backend.evaluate"], "worker.execute");

    // The lb propagates ONE id: the worker joined the lb's trace
    // instead of minting its own, and the result payload matches an
    // untraced direct execution byte for byte.
    EXPECT_EQ(resultOf(traced).dump(), resultOf(direct).dump());

    // Untraced requests keep the verbatim relay (no trace member,
    // result still byte-identical).
    const std::string untraced =
        submitTo(fleet, optimizeRequest(1, g, 2)).get();
    EXPECT_EQ(untraced.find("\"trace\""), std::string::npos);
    EXPECT_EQ(resultOf(untraced).dump(), resultOf(direct).dump());

    json::Value slowlog = resultOf(submitTo(
        fleet,
        R"({"id": 9, "method": "slowlog", "schema_version": 2})")
                                       .get());
    EXPECT_EQ(slowlog.find("captured")->asNumber(), 1.0);
    fleet.stop();
}

std::set<std::string>
objectKeys(const json::Value &doc)
{
    std::set<std::string> keys;
    for (const auto &[key, value] : doc.asObject())
        keys.insert(key);
    return keys;
}

TEST(ServiceMetrics, WorkerMetricsAndHealthShareOneSerialization)
{
    ServiceServer server;
    server.handleLine(optimizeRequest(1, smallGraph(107), 2));

    json::Value health = resultOf(
        server.handleLine(R"({"id": 2, "method": "health"})"));
    json::Value metrics = resultOf(
        server.handleLine(R"({"id": 3, "method": "metrics"})"));

    // Satellite contract: the engine block and the process identity
    // flow through ONE builder each, so the key sets cannot drift.
    EXPECT_EQ(objectKeys(*metrics.find("engine")),
              objectKeys(*health.find("engine")));
    for (const std::string &key : objectKeys(*metrics.find("process")))
        EXPECT_TRUE(objectKeys(health).count(key))
            << "metrics.process key missing from health: " << key;

    std::set<std::string> families;
    for (const json::Value &family : metrics.find("families")->asArray())
        families.insert(family.find("name")->asString());
    const char *required[] = {
        "redqaoa_uptime_seconds",
        "redqaoa_requests_received_total",
        "redqaoa_requests_admitted_total",
        "redqaoa_responses_total",
        "redqaoa_requests_rejected_total",
        "redqaoa_requests_by_method_total",
        "redqaoa_in_flight",
        "redqaoa_queue_depth",
        "redqaoa_request_latency_seconds",
        "redqaoa_engine_jobs_total",
        "redqaoa_store_events_total",
    };
    for (const char *name : required)
        EXPECT_TRUE(families.count(name)) << "missing family: " << name;

    // hello advertises the new control-plane methods.
    json::Value hello = resultOf(
        server.handleLine(R"({"id": 4, "method": "hello"})"));
    std::set<std::string> methods;
    for (const json::Value &m : hello.find("methods")->asArray())
        methods.insert(m.asString());
    EXPECT_TRUE(methods.count("metrics"));
    EXPECT_TRUE(methods.count("slowlog"));

    // The Prometheus rendering exposes the same families.
    const std::string text = server.metricsText();
    EXPECT_NE(text.find("redqaoa_requests_received_total"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE redqaoa_request_latency_seconds"
                        " histogram"),
              std::string::npos);
}

TEST(ServiceMetrics, FleetMetricsAggregateTheFleet)
{
    Graph g = smallGraph(109);
    Rng rng(110);
    TestWorkerDirectory workers(2);
    service::WorkerFleetService fleet(workers);
    submitTo(fleet, evaluateRequest(1, g, randomParameterSets(1, 4, rng)))
        .get();

    json::Value health = fleet.healthResult();
    json::Value metrics = resultOf(submitTo(
        fleet, R"({"id": 2, "method": "metrics"})")
                                       .get());
    EXPECT_EQ(objectKeys(*metrics.find("engine")),
              objectKeys(*health.find("engine")));
    for (const std::string &key : objectKeys(*metrics.find("process")))
        EXPECT_TRUE(objectKeys(health).count(key))
            << "metrics.process key missing from health: " << key;

    std::set<std::string> families;
    for (const json::Value &family : metrics.find("families")->asArray())
        families.insert(family.find("name")->asString());
    const char *required[] = {
        "redqaoa_lb_requests_received_total",
        "redqaoa_lb_responses_total",
        "redqaoa_lb_forwards_total",
        "redqaoa_lb_replays_total",
        "redqaoa_lb_worker_failures_total",
        "redqaoa_lb_worker_restarts_total",
        "redqaoa_lb_worker_up",
        "redqaoa_queue_depth",
        "redqaoa_in_flight",
    };
    for (const char *name : required)
        EXPECT_TRUE(families.count(name)) << "missing family: " << name;

    const std::string text = fleet.metricsText();
    EXPECT_NE(text.find("redqaoa_lb_worker_up{lane=\"0\"} 1"),
              std::string::npos)
        << text;
    fleet.stop();
}

} // namespace
} // namespace redqaoa
