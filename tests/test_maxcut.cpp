/**
 * @file
 * MaxCut Hamiltonian and ideal QAOA simulator tests, including the
 * brute-force cross-checks that anchor every approximation-ratio
 * experiment.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "quantum/maxcut.hpp"

namespace redqaoa {
namespace {

TEST(CutValue, TriangleCuts)
{
    Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
    EXPECT_EQ(cutValue(g, 0b000), 0);
    EXPECT_EQ(cutValue(g, 0b001), 2);
    EXPECT_EQ(cutValue(g, 0b011), 2);
    EXPECT_EQ(cutValue(g, 0b111), 0);
}

TEST(CutTable, MatchesCutValueEverywhere)
{
    Rng rng(3);
    Graph g = gen::erdosRenyiGnp(6, 0.5, rng);
    auto table = cutTable(g);
    for (std::uint64_t z = 0; z < table.size(); ++z)
        EXPECT_DOUBLE_EQ(table[z], static_cast<double>(cutValue(g, z)));
}

TEST(CutTable, RejectsHugeGraphs)
{
    Graph g(27);
    EXPECT_THROW(cutTable(g), std::invalid_argument);
}

TEST(MaxCut, CompleteGraphK4)
{
    // K4 max cut = 4 (2-2 split).
    EXPECT_EQ(maxCutBruteForce(gen::complete(4)), 4);
}

TEST(MaxCut, EvenCycleIsFullyCuttable)
{
    EXPECT_EQ(maxCutBruteForce(gen::cycle(8)), 8);
}

TEST(MaxCut, OddCycleLosesOneEdge)
{
    EXPECT_EQ(maxCutBruteForce(gen::cycle(7)), 6);
}

TEST(MaxCut, StarCutsEverything)
{
    EXPECT_EQ(maxCutBruteForce(gen::star(9)), 8);
}

TEST(MaxCut, LocalSearchMatchesBruteForceOnSmallGraphs)
{
    Rng rng(11);
    for (int trial = 0; trial < 15; ++trial) {
        Graph g = gen::connectedGnp(8, 0.4, rng);
        Rng ls(100 + static_cast<std::uint64_t>(trial));
        EXPECT_EQ(maxCutLocalSearch(g, ls, 32), maxCutBruteForce(g))
            << "trial " << trial;
    }
}

TEST(QaoaParams, FlattenRoundTrip)
{
    QaoaParams p({0.1, 0.2, 0.3}, {0.4, 0.5, 0.6});
    auto x = p.flatten();
    ASSERT_EQ(x.size(), 6u);
    QaoaParams q = QaoaParams::unflatten(x);
    EXPECT_EQ(q.layers(), 3);
    EXPECT_DOUBLE_EQ(q.gamma[2], 0.3);
    EXPECT_DOUBLE_EQ(q.beta[0], 0.4);
}

TEST(QaoaSimulator, ZeroAnglesGiveUniformExpectation)
{
    // gamma = beta = 0: state stays uniform, <C> = m/2.
    Rng rng(7);
    Graph g = gen::connectedGnp(7, 0.4, rng);
    QaoaSimulator sim(g);
    QaoaParams p({0.0}, {0.0});
    EXPECT_NEAR(sim.expectation(p), g.numEdges() / 2.0, 1e-10);
}

TEST(QaoaSimulator, ExpectationBoundedByMaxCut)
{
    Rng rng(9);
    Graph g = gen::connectedGnp(8, 0.5, rng);
    QaoaSimulator sim(g);
    int mc = maxCutBruteForce(g);
    for (int t = 0; t < 30; ++t) {
        QaoaParams p = QaoaParams::random(2, rng);
        double e = sim.expectation(p);
        EXPECT_GE(e, -1e-9);
        EXPECT_LE(e, mc + 1e-9);
    }
}

TEST(QaoaSimulator, SingleEdgeP1KnownOptimum)
{
    // For a single edge, <C> = 1/2 + 1/2 sin(4 beta) sin(gamma);
    // optimum 1 at gamma = pi/2, beta = pi/8.
    Graph g(2, {{0, 1}});
    QaoaSimulator sim(g);
    QaoaParams best({M_PI / 2.0}, {M_PI / 8.0});
    EXPECT_NEAR(sim.expectation(best), 1.0, 1e-10);

    QaoaParams generic({0.8}, {0.6});
    double expect =
        0.5 + 0.5 * std::sin(4.0 * 0.6) * std::sin(0.8);
    EXPECT_NEAR(sim.expectation(generic), expect, 1e-10);
}

TEST(QaoaSimulator, LayersImproveCycleApproximation)
{
    // On C_8, best p=2 energy should be at least best p=1 energy
    // (sampled over a modest random search).
    Graph g = gen::cycle(8);
    QaoaSimulator sim(g);
    Rng rng(21);
    double best1 = 0.0, best2 = 0.0;
    for (int t = 0; t < 400; ++t) {
        best1 = std::max(best1, sim.expectation(QaoaParams::random(1, rng)));
        best2 = std::max(best2, sim.expectation(QaoaParams::random(2, rng)));
    }
    EXPECT_GE(best2, best1 - 0.05);
    EXPECT_GT(best1, 0.5 * 8); // Beats random guessing (m/2 = 4).
}

TEST(QaoaSimulator, StateMatchesExpectation)
{
    Rng rng(31);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    QaoaSimulator sim(g);
    QaoaParams p = QaoaParams::random(2, rng);
    Statevector psi = sim.state(p);
    const auto &cut = sim.costTable();
    double e = 0.0;
    for (std::size_t z = 0; z < psi.dim(); ++z)
        e += std::norm(psi[z]) * cut[z];
    EXPECT_NEAR(e, sim.expectation(p), 1e-10);
}

/** Gamma periodicity: the landscape repeats at gamma + 2 pi. */
class QaoaPeriodicity : public ::testing::TestWithParam<int>
{};

TEST_P(QaoaPeriodicity, GammaPeriodTwoPi)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Graph g = gen::connectedGnp(6, 0.5, rng);
    QaoaSimulator sim(g);
    double gm = rng.uniform(0, 2 * M_PI);
    double bt = rng.uniform(0, M_PI);
    QaoaParams a({gm}, {bt});
    QaoaParams b({gm + 2 * M_PI}, {bt});
    EXPECT_NEAR(sim.expectation(a), sim.expectation(b), 1e-9);
}

TEST_P(QaoaPeriodicity, BetaPeriodPi)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    QaoaSimulator sim(g);
    double gm = rng.uniform(0, 2 * M_PI);
    double bt = rng.uniform(0, M_PI);
    QaoaParams a({gm}, {bt});
    QaoaParams b({gm}, {bt + M_PI});
    EXPECT_NEAR(sim.expectation(a), sim.expectation(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QaoaPeriodicity, ::testing::Range(0, 8));

} // namespace
} // namespace redqaoa
