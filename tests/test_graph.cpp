/**
 * @file
 * Graph substrate tests: core operations, generators, centralities
 * against hand-computed values, and subgraph machinery (including the
 * light-cone neighborhoods of §3.3).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/centrality.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace redqaoa {
namespace {

TEST(Graph, AddEdgeBasics)
{
    Graph g(4);
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_TRUE(g.addEdge(3, 1));
    EXPECT_FALSE(g.addEdge(1, 0)); // Duplicate.
    EXPECT_FALSE(g.addEdge(2, 2)); // Self loop.
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_TRUE(g.hasEdge(1, 3));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, EdgesAreNormalized)
{
    Graph g(3);
    g.addEdge(2, 0);
    EXPECT_EQ(g.edges()[0].u, 0);
    EXPECT_EQ(g.edges()[0].v, 2);
}

TEST(Graph, AverageDegree)
{
    EXPECT_DOUBLE_EQ(gen::cycle(6).averageDegree(), 2.0);
    EXPECT_DOUBLE_EQ(gen::complete(5).averageDegree(), 4.0);
    EXPECT_DOUBLE_EQ(Graph(4).averageDegree(), 0.0);
}

TEST(Graph, Connectivity)
{
    Graph g(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(g.isConnected());
    auto comps = g.connectedComponents();
    EXPECT_EQ(comps.size(), 2u);
    g.addEdge(1, 2);
    EXPECT_TRUE(g.isConnected());
}

TEST(Graph, BfsDistances)
{
    Graph g = gen::path(5);
    auto d = g.bfsDistances(0);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(d[static_cast<std::size_t>(i)], i);
}

TEST(Generators, ErdosRenyiEdgeCountConcentrates)
{
    Rng rng(1);
    int total = 0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t)
        total += gen::erdosRenyiGnp(20, 0.3, rng).numEdges();
    double expected = 0.3 * 190;
    EXPECT_NEAR(total / static_cast<double>(trials), expected, 8.0);
}

TEST(Generators, GnmExactEdgeCount)
{
    Rng rng(2);
    Graph g = gen::erdosRenyiGnm(12, 20, rng);
    EXPECT_EQ(g.numEdges(), 20);
}

TEST(Generators, ConnectedGnpIsConnected)
{
    Rng rng(3);
    for (int t = 0; t < 10; ++t)
        EXPECT_TRUE(gen::connectedGnp(10, 0.2, rng).isConnected());
}

TEST(Generators, RandomRegularDegrees)
{
    Rng rng(4);
    for (int d : {2, 3, 4}) {
        Graph g = gen::randomRegular(10, d, rng);
        for (Node v = 0; v < 10; ++v)
            EXPECT_EQ(g.degree(v), d);
    }
}

TEST(Generators, RandomRegularRejectsOddProduct)
{
    Rng rng(5);
    EXPECT_THROW(gen::randomRegular(5, 3, rng), std::invalid_argument);
}

TEST(Generators, NamedFamilies)
{
    EXPECT_EQ(gen::cycle(7).numEdges(), 7);
    EXPECT_EQ(gen::path(7).numEdges(), 6);
    EXPECT_EQ(gen::star(7).numEdges(), 6);
    EXPECT_EQ(gen::star(7).degree(0), 6);
    EXPECT_EQ(gen::complete(7).numEdges(), 21);
    Graph t = gen::karyTree(13, 4);
    EXPECT_EQ(t.numEdges(), 12);
    EXPECT_EQ(t.degree(0), 4);
    EXPECT_TRUE(t.isConnected());
}

TEST(Generators, EgoNetworkHubTouchesAll)
{
    Rng rng(6);
    Graph g = gen::egoNetwork(10, 0.5, rng);
    EXPECT_EQ(g.degree(0), 9);
    EXPECT_TRUE(g.isConnected());
}

TEST(Generators, RewirePreservesCountsAndConnectivity)
{
    Rng rng(7);
    Graph base = gen::randomRegular(12, 4, rng);
    Graph rewired = gen::rewireEdges(base, 0.1, rng);
    EXPECT_EQ(rewired.numNodes(), base.numNodes());
    EXPECT_EQ(rewired.numEdges(), base.numEdges());
    EXPECT_TRUE(rewired.isConnected());
    // Should no longer be regular (with overwhelming probability).
    bool regular = true;
    for (Node v = 1; v < rewired.numNodes(); ++v)
        if (rewired.degree(v) != rewired.degree(0))
            regular = false;
    EXPECT_FALSE(regular);
}

TEST(Centrality, DegreeOnStar)
{
    auto c = centrality::degree(gen::star(5));
    EXPECT_DOUBLE_EQ(c[0], 1.0);
    EXPECT_DOUBLE_EQ(c[1], 0.25);
}

TEST(Centrality, ClusteringOnTriangleWithTail)
{
    // Triangle 0-1-2 plus tail 2-3.
    Graph g(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
    auto c = centrality::clustering(g);
    EXPECT_DOUBLE_EQ(c[0], 1.0);
    EXPECT_DOUBLE_EQ(c[1], 1.0);
    EXPECT_NEAR(c[2], 1.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(c[3], 0.0);
}

TEST(Centrality, BetweennessOnPath)
{
    // Path 0-1-2: node 1 lies on the single 0-2 shortest path.
    auto c = centrality::betweenness(gen::path(3));
    EXPECT_NEAR(c[1], 1.0, 1e-12);
    EXPECT_NEAR(c[0], 0.0, 1e-12);
}

TEST(Centrality, BetweennessOnStarCenter)
{
    auto c = centrality::betweenness(gen::star(6));
    EXPECT_NEAR(c[0], 1.0, 1e-12);
    for (int v = 1; v < 6; ++v)
        EXPECT_NEAR(c[static_cast<std::size_t>(v)], 0.0, 1e-12);
}

TEST(Centrality, ClosenessOnPathEnds)
{
    auto c = centrality::closeness(gen::path(5));
    EXPECT_GT(c[2], c[0]);
    EXPECT_GT(c[2], c[4]);
    EXPECT_NEAR(c[0], 4.0 / (1 + 2 + 3 + 4), 1e-12);
}

TEST(Centrality, EigenvectorSymmetricOnCycle)
{
    auto c = centrality::eigenvector(gen::cycle(6));
    for (int v = 1; v < 6; ++v)
        EXPECT_NEAR(c[static_cast<std::size_t>(v)], c[0], 1e-6);
}

TEST(Centrality, EigenvectorFavorsHub)
{
    auto c = centrality::eigenvector(gen::star(7));
    for (int v = 1; v < 7; ++v)
        EXPECT_GT(c[0], c[static_cast<std::size_t>(v)]);
}

TEST(Subgraph, InducedKeepsInternalEdges)
{
    Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
    Subgraph s = inducedSubgraph(g, {0, 1, 2});
    EXPECT_EQ(s.graph.numNodes(), 3);
    EXPECT_EQ(s.graph.numEdges(), 2);
    EXPECT_EQ(s.toOriginal.size(), 3u);
    EXPECT_TRUE(s.graph.hasEdge(0, 1));
    EXPECT_TRUE(s.graph.hasEdge(1, 2));
}

TEST(Subgraph, RandomConnectedHasRequestedSize)
{
    Rng rng(8);
    Graph g = gen::connectedGnp(12, 0.3, rng);
    for (int k : {3, 6, 9, 12}) {
        Subgraph s = randomConnectedSubgraph(g, k, rng);
        EXPECT_EQ(s.graph.numNodes(), k);
        EXPECT_TRUE(s.graph.isConnected());
    }
}

TEST(Subgraph, EnumerationCountsOnCycle)
{
    // C_5 has exactly 5 connected induced subgraphs of each size 1..4.
    Graph g = gen::cycle(5);
    for (int k = 1; k <= 4; ++k)
        EXPECT_EQ(connectedSubgraphs(g, k).size(), 5u) << "k=" << k;
    EXPECT_EQ(connectedSubgraphs(g, 5).size(), 1u);
}

TEST(Subgraph, EnumerationMatchesCompleteGraphBinomial)
{
    // K_5: every subset is connected -> C(5, k) subgraphs.
    Graph g = gen::complete(5);
    EXPECT_EQ(connectedSubgraphs(g, 2).size(), 10u);
    EXPECT_EQ(connectedSubgraphs(g, 3).size(), 10u);
    EXPECT_EQ(connectedSubgraphs(g, 4).size(), 5u);
}

TEST(Subgraph, EnumerationRespectsLimit)
{
    Graph g = gen::complete(8);
    auto subs = connectedSubgraphs(g, 4, 7);
    EXPECT_EQ(subs.size(), 7u);
}

TEST(Subgraph, EdgeNeighborhoodRadii)
{
    Graph g = gen::path(7); // 0-1-2-3-4-5-6.
    Edge mid{3, 4};
    Subgraph r1 = edgeNeighborhood(g, mid, 1);
    EXPECT_EQ(r1.graph.numNodes(), 4); // {2,3,4,5}.
    Subgraph r2 = edgeNeighborhood(g, mid, 2);
    EXPECT_EQ(r2.graph.numNodes(), 6); // {1..6}.
    Subgraph r3 = edgeNeighborhood(g, mid, 3);
    EXPECT_EQ(r3.graph.numNodes(), 7);
}

TEST(Subgraph, EdgeNeighborhoodIsConnected)
{
    Rng rng(9);
    Graph g = gen::connectedGnp(12, 0.25, rng);
    for (const Edge &e : g.edges()) {
        Subgraph s = edgeNeighborhood(g, e, 2);
        EXPECT_TRUE(s.graph.isConnected());
    }
}

} // namespace
} // namespace redqaoa
