/**
 * @file
 * End-to-end pipeline integration tests (Fig 4 flow): the Red-QAOA run
 * must produce valid parameters, sane approximation ratios, and search
 * on a genuinely smaller circuit than the baseline.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"

namespace redqaoa {
namespace {

PipelineOptions
fastOptions()
{
    PipelineOptions opts;
    opts.layers = 1;
    opts.noise = noise::scaled(1.0);
    opts.restarts = 2;
    opts.searchEvaluations = 25;
    opts.refineEvaluations = 10;
    opts.trajectories = 6;
    return opts;
}

TEST(Pipeline, RunProducesValidResult)
{
    Rng rng(1);
    Graph g = gen::connectedGnp(8, 0.4, rng);
    RedQaoaPipeline pipe(fastOptions());
    PipelineResult res = pipe.run(g, rng);

    EXPECT_EQ(res.params.layers(), 1);
    EXPECT_GT(res.maxCut, 0);
    EXPECT_GT(res.idealEnergy, 0.0);
    EXPECT_LE(res.approxRatio, 1.0 + 1e-9);
    EXPECT_GT(res.approxRatio, 0.3); // Far above the random-guess floor.
    EXPECT_EQ(res.searchRuns.size(), 2u);
    EXPECT_GT(res.refineRun.evaluations, 0);
}

TEST(Pipeline, SearchGraphIsSmallerThanOriginal)
{
    Rng rng(2);
    Graph g = gen::connectedGnp(10, 0.45, rng);
    RedQaoaPipeline pipe(fastOptions());
    PipelineResult res = pipe.run(g, rng);
    EXPECT_LT(res.reduction.reduced.graph.numNodes(), g.numNodes());
    EXPECT_GE(res.reduction.andRatio, 0.7 - 1e-9);
}

TEST(Pipeline, BaselineKeepsWholeGraph)
{
    Rng rng(3);
    Graph g = gen::connectedGnp(8, 0.4, rng);
    RedQaoaPipeline pipe(fastOptions());
    PipelineResult res = pipe.runBaseline(g, rng);
    EXPECT_EQ(res.reduction.reduced.graph.numNodes(), g.numNodes());
    EXPECT_DOUBLE_EQ(res.reduction.andRatio, 1.0);
    EXPECT_LE(res.approxRatio, 1.0 + 1e-9);
}

TEST(Pipeline, IdealNoiseRecoversGoodRatios)
{
    // With no noise the pipeline is just QAOA with restarts: p=1 should
    // reliably exceed ~0.6 approximation ratio on small graphs.
    Rng rng(4);
    PipelineOptions opts = fastOptions();
    opts.noise = noise::ideal();
    opts.restarts = 4;
    opts.searchEvaluations = 60;
    opts.refineEvaluations = 25;
    RedQaoaPipeline pipe(opts);
    Graph g = gen::connectedGnp(8, 0.5, rng);
    PipelineResult res = pipe.run(g, rng);
    EXPECT_GT(res.approxRatio, 0.6);
}

TEST(Pipeline, DeterministicGivenSeeds)
{
    PipelineOptions opts = fastOptions();
    Rng g_rng(5);
    Graph g = gen::connectedGnp(8, 0.4, g_rng);
    RedQaoaPipeline pipe(opts);
    Rng r1(9), r2(9);
    PipelineResult a = pipe.run(g, r1);
    PipelineResult b = pipe.run(g, r2);
    EXPECT_DOUBLE_EQ(a.idealEnergy, b.idealEnergy);
    EXPECT_EQ(a.reduction.reduced.graph.numNodes(),
              b.reduction.reduced.graph.numNodes());
}

TEST(Pipeline, MultiLayerParamsComeBackWithRightDepth)
{
    Rng rng(6);
    PipelineOptions opts = fastOptions();
    opts.layers = 2;
    RedQaoaPipeline pipe(opts);
    Graph g = gen::connectedGnp(7, 0.5, rng);
    PipelineResult res = pipe.run(g, rng);
    EXPECT_EQ(res.params.layers(), 2);
    EXPECT_EQ(res.params.gamma.size(), 2u);
    EXPECT_EQ(res.params.beta.size(), 2u);
}

} // namespace
} // namespace redqaoa
