/**
 * @file
 * GNN pooling baseline tests: feature extraction matches the §5.5 spec,
 * GCN layers are well-formed, and all three poolers produce the
 * requested sizes deterministically.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pooling/features.hpp"
#include "pooling/gcn.hpp"
#include "pooling/poolers.hpp"

namespace redqaoa {
namespace {

TEST(Features, ShapeAndRange)
{
    Rng rng(1);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    Matrix x = pooling::nodeFeatures(g);
    EXPECT_EQ(x.rows(), 9u);
    EXPECT_EQ(x.cols(), pooling::kNumFeatures);
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c) {
            EXPECT_GE(x(r, c), 0.0);
            EXPECT_LE(x(r, c), 1.0);
        }
}

TEST(Features, HubDominatesOnStar)
{
    Matrix x = pooling::nodeFeatures(gen::star(8));
    // Degree (col 0), betweenness (2), closeness (3), eigenvector (4)
    // are all maximal at the hub.
    for (std::size_t c : {0u, 2u, 3u, 4u})
        for (std::size_t r = 1; r < 8; ++r)
            EXPECT_GE(x(0, c), x(r, c)) << "col " << c;
}

TEST(Gcn, NormalizedAdjacencyRowsAreFinite)
{
    Rng rng(2);
    Graph g = gen::connectedGnp(7, 0.35, rng);
    Matrix a = pooling::normalizedAdjacency(g);
    EXPECT_EQ(a.rows(), 7u);
    for (std::size_t i = 0; i < 7; ++i) {
        EXPECT_GT(a(i, i), 0.0); // Self loops present.
        for (std::size_t j = 0; j < 7; ++j) {
            EXPECT_GE(a(i, j), 0.0);
            EXPECT_LE(a(i, j), 1.0);
        }
    }
}

TEST(Gcn, ForwardShapeAndBounds)
{
    Rng rng(3);
    Graph g = gen::connectedGnp(8, 0.4, rng);
    Matrix x = pooling::nodeFeatures(g);
    pooling::GcnLayer layer(pooling::kNumFeatures, 3, 99);
    Matrix h = layer.forward(g, x);
    EXPECT_EQ(h.rows(), 8u);
    EXPECT_EQ(h.cols(), 3u);
    for (double v : h.data()) {
        EXPECT_GE(v, -1.0); // tanh range.
        EXPECT_LE(v, 1.0);
    }
}

TEST(Gcn, XavierIsDeterministic)
{
    Matrix a = pooling::xavierMatrix(4, 3, 7);
    Matrix b = pooling::xavierMatrix(4, 3, 7);
    EXPECT_EQ(a.data(), b.data());
    Matrix c = pooling::xavierMatrix(4, 3, 8);
    EXPECT_NE(a.data(), c.data());
}

/** Every pooler must honor the requested size on assorted graphs. */
class PoolerSizes : public ::testing::TestWithParam<int>
{};

TEST_P(PoolerSizes, RequestedSizeHonored)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 10);
    Graph g = gen::connectedGnp(10, 0.4, rng);
    for (const auto &pooler : pooling::allPoolers()) {
        for (int k : {3, 5, 8, 10}) {
            Graph pooled = pooler->pool(g, k);
            EXPECT_EQ(pooled.numNodes(), k) << pooler->name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolerSizes, ::testing::Range(0, 6));

TEST(Poolers, DeterministicAcrossCalls)
{
    Rng rng(20);
    Graph g = gen::connectedGnp(9, 0.45, rng);
    for (const auto &pooler : pooling::allPoolers()) {
        Graph a = pooler->pool(g, 5);
        Graph b = pooler->pool(g, 5);
        EXPECT_EQ(a.numEdges(), b.numEdges()) << pooler->name();
        for (const Edge &e : a.edges())
            EXPECT_TRUE(b.hasEdge(e.u, e.v)) << pooler->name();
    }
}

TEST(Poolers, TopKAndSagReturnInducedSubgraphs)
{
    // Induced subgraphs can never gain average degree.
    Rng rng(21);
    for (int t = 0; t < 5; ++t) {
        Graph g = gen::connectedGnp(10, 0.4, rng);
        pooling::TopKPooling topk;
        pooling::SagPooling sag;
        for (int k : {5, 7}) {
            EXPECT_LE(topk.pool(g, k).numEdges(), g.numEdges());
            EXPECT_LE(sag.pool(g, k).numEdges(), g.numEdges());
        }
    }
}

TEST(Poolers, AsaProducesValidGraph)
{
    Rng rng(22);
    Graph g = gen::connectedGnp(12, 0.3, rng);
    pooling::AsaPooling asa;
    Graph pooled = asa.pool(g, 6);
    EXPECT_EQ(pooled.numNodes(), 6);
    // Simple graph invariants hold.
    for (const Edge &e : pooled.edges()) {
        EXPECT_NE(e.u, e.v);
        EXPECT_LT(e.v, 6);
    }
}

TEST(Poolers, NamesAndOrder)
{
    auto all = pooling::allPoolers();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0]->name(), "ASA");
    EXPECT_EQ(all[1]->name(), "SAG");
    EXPECT_EQ(all[2]->name(), "TopK");
}

TEST(Poolers, FullSizePoolKeepsAllNodes)
{
    Rng rng(23);
    Graph g = gen::connectedGnp(8, 0.5, rng);
    pooling::TopKPooling topk;
    Graph pooled = topk.pool(g, 8);
    EXPECT_EQ(pooled.numNodes(), 8);
    EXPECT_EQ(pooled.numEdges(), g.numEdges());
}

} // namespace
} // namespace redqaoa
