/**
 * @file
 * Noise-channel correctness: density-matrix channels must preserve
 * trace/positivity, the zero-noise density matrix must agree with the
 * statevector, trajectories must converge to the density matrix under
 * depolarizing noise, and noise must strictly degrade the QAOA signal.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/maxcut.hpp"
#include "quantum/noise.hpp"
#include "quantum/trajectory.hpp"

namespace redqaoa {
namespace {

TEST(DensityMatrix, UniformStateDiagonal)
{
    DensityMatrix dm = DensityMatrix::uniform(3);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
    auto d = dm.diagonal();
    for (double v : d)
        EXPECT_NEAR(v, 1.0 / 8.0, 1e-12);
}

TEST(DensityMatrix, ZeroNoiseMatchesStatevector)
{
    Rng rng(5);
    Graph g = gen::connectedGnp(5, 0.5, rng);
    QaoaSimulator sv(g);
    for (int t = 0; t < 6; ++t) {
        QaoaParams p = QaoaParams::random(2, rng);
        double ideal = sv.expectation(p);
        double dm = noisyQaoaExpectationDM(g, p, noise::ideal());
        EXPECT_NEAR(dm, ideal, 1e-9);
    }
}

TEST(DensityMatrix, ChannelsPreserveTrace)
{
    DensityMatrix dm = DensityMatrix::uniform(3);
    dm.applyRzz(0, 1, 0.7);
    dm.applyDepolarizing1Q(0, 0.05);
    dm.applyDepolarizing2Q(0, 2, 0.08);
    dm.applyAmplitudeDamping(1, 0.1);
    dm.applyPhaseDamping(2, 0.12);
    Gate1Q h{Complex{M_SQRT1_2, 0}, Complex{M_SQRT1_2, 0},
             Complex{M_SQRT1_2, 0}, Complex{-M_SQRT1_2, 0}};
    dm.applyUnitary1Q(1, h);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, DiagonalStaysNonNegative)
{
    DensityMatrix dm = DensityMatrix::uniform(3);
    dm.applyDepolarizing1Q(0, 0.2);
    dm.applyAmplitudeDamping(1, 0.3);
    dm.applyDepolarizing2Q(1, 2, 0.25);
    for (double v : dm.diagonal())
        EXPECT_GE(v, -1e-12);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixedQubit)
{
    // p = 3/4 single-qubit depolarizing is the fully depolarizing map.
    DensityMatrix dm(1); // |0><0|.
    dm.applyDepolarizing1Q(0, 0.75);
    auto d = dm.diagonal();
    EXPECT_NEAR(d[0], 0.5, 1e-12);
    EXPECT_NEAR(d[1], 0.5, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingDrivesToGround)
{
    DensityMatrix dm(1);
    // Prepare |1><1| via X (as a unitary).
    Gate1Q x{Complex{0, 0}, Complex{1, 0}, Complex{1, 0}, Complex{0, 0}};
    dm.applyUnitary1Q(0, x);
    for (int k = 0; k < 60; ++k)
        dm.applyAmplitudeDamping(0, 0.2);
    auto d = dm.diagonal();
    EXPECT_NEAR(d[0], 1.0, 1e-4);
}

TEST(DensityMatrix, PhaseDampingKillsCoherence)
{
    DensityMatrix dm(1);
    Gate1Q h{Complex{M_SQRT1_2, 0}, Complex{M_SQRT1_2, 0},
             Complex{M_SQRT1_2, 0}, Complex{-M_SQRT1_2, 0}};
    dm.applyUnitary1Q(0, h);
    for (int k = 0; k < 80; ++k)
        dm.applyPhaseDamping(0, 0.25);
    // Off-diagonal decayed to sqrt(1-l)^80 ~ 1e-5, diagonal untouched.
    EXPECT_NEAR(std::abs(dm.entry(0, 1)), 0.0, 1e-4);
    EXPECT_NEAR(dm.entry(0, 0).real(), 0.5, 1e-10);
}

TEST(DensityMatrix, DepolarizingShrinksZz)
{
    Rng rng(8);
    Graph g = gen::connectedGnp(5, 0.5, rng);
    QaoaParams p = QaoaParams::random(1, rng);

    NoiseModel weak;
    weak.twoQubitDepol = 0.01;
    NoiseModel strong;
    strong.twoQubitDepol = 0.10;

    QaoaSimulator sv(g);
    double ideal = sv.expectation(p);
    double e_weak = noisyQaoaExpectationDM(g, p, weak);
    double e_strong = noisyQaoaExpectationDM(g, p, strong);
    // Noise pulls the energy toward the maximally mixed value m/2.
    double mixed = g.numEdges() / 2.0;
    EXPECT_LT(std::fabs(e_strong - mixed), std::fabs(ideal - mixed) + 1e-9);
    EXPECT_LT(std::fabs(e_strong - mixed),
              std::fabs(e_weak - mixed) + 1e-9);
}

TEST(Trajectory, IdealModelReproducesStatevector)
{
    Rng rng(9);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    QaoaSimulator sv(g);
    TrajectorySimulator traj(g, noise::ideal(), 4, 1);
    for (int t = 0; t < 5; ++t) {
        QaoaParams p = QaoaParams::random(1, rng);
        EXPECT_NEAR(traj.expectation(p), sv.expectation(p), 1e-9);
    }
}

TEST(Trajectory, ConvergesToDensityMatrixUnderDepolarizing)
{
    Rng rng(10);
    Graph g = gen::connectedGnp(5, 0.55, rng);
    NoiseModel nm;
    nm.oneQubitDepol = 0.004;
    nm.twoQubitDepol = 0.03;
    QaoaParams p = QaoaParams::random(1, rng);
    double exact = noisyQaoaExpectationDM(g, p, nm);
    TrajectorySimulator traj(g, nm, 1500, 42);
    double estimate = traj.expectation(p);
    // Monte-Carlo tolerance: generous but far tighter than the
    // ideal-vs-noisy separation the experiments rely on.
    EXPECT_NEAR(estimate, exact, 0.08);
}

TEST(Trajectory, ReadoutFoldingMatchesDensityMatrix)
{
    Rng rng(11);
    Graph g = gen::connectedGnp(5, 0.5, rng);
    NoiseModel nm;
    nm.readoutError = 0.05; // Readout-only: both paths are analytic.
    QaoaParams p = QaoaParams::random(1, rng);
    double dm = noisyQaoaExpectationDM(g, p, nm);
    TrajectorySimulator traj(g, nm, 1, 7);
    EXPECT_NEAR(traj.expectation(p), dm, 1e-9);
}

TEST(Trajectory, SampledExpectationApproximatesAnalytic)
{
    Rng rng(12);
    Graph g = gen::connectedGnp(5, 0.5, rng);
    NoiseModel nm = noise::scaled(1.0);
    TrajectorySimulator traj(g, nm, 16, 5);
    QaoaParams p = QaoaParams::random(1, rng);
    double analytic = traj.expectation(p);
    TrajectorySimulator traj2(g, nm, 16, 5);
    double sampled = traj2.sampledExpectation(p, 20000);
    EXPECT_NEAR(sampled, analytic, 0.25);
}

TEST(PauliChannelTwirl, DepolarizingProbabilities)
{
    NoiseModel nm;
    nm.oneQubitDepol = 0.03;
    PauliChannel ch = PauliChannel::fromModel(nm);
    EXPECT_NEAR(ch.px, 0.01, 1e-12);
    EXPECT_NEAR(ch.py, 0.01, 1e-12);
    EXPECT_NEAR(ch.pz, 0.01, 1e-12);
}

TEST(PauliChannelTwirl, DampingIsMostlyXY)
{
    NoiseModel nm;
    nm.amplitudeDamping = 0.04;
    PauliChannel ch = PauliChannel::fromModel(nm);
    EXPECT_NEAR(ch.px, 0.01, 1e-12);
    EXPECT_NEAR(ch.py, 0.01, 1e-12);
    EXPECT_LT(ch.pz, 1e-3);
}

TEST(NoisePresets, DeviceOrderingIsSane)
{
    // Kolkata is the paper's lowest-error device; Toronto/Melbourne and
    // Aspen are the noisy end.
    EXPECT_LT(noise::ibmKolkata().twoQubitDepol,
              noise::ibmToronto().twoQubitDepol);
    EXPECT_LT(noise::ibmToronto().twoQubitDepol,
              noise::ibmMelbourne().twoQubitDepol);
    EXPECT_LT(noise::ibmMelbourne().twoQubitDepol,
              noise::rigettiAspenM3().twoQubitDepol);
    EXPECT_EQ(noise::fig24Backends().size(), 7u);
    EXPECT_TRUE(noise::ideal().isIdeal());
    EXPECT_FALSE(noise::ibmCairo().isIdeal());
}

TEST(NoisePresets, ReadoutLambda)
{
    NoiseModel nm;
    nm.readoutError = 0.25;
    EXPECT_NEAR(nm.readoutLambda(), 0.5, 1e-12);
}

TEST(OverRotation, DistortsLandscapeShape)
{
    // A purely coherent calibration error must change the landscape in
    // a way normalization cannot hide (stochastic channels mostly
    // rescale; over-rotation displaces structure).
    Rng rng(21);
    Graph g = gen::connectedGnp(7, 0.5, rng);
    QaoaSimulator ideal(g);

    NoiseModel coherent;
    coherent.overRotation = 0.10;
    TrajectorySimulator traj(g, coherent, 1, 7);

    double max_gap = 0.0;
    for (int t = 0; t < 10; ++t) {
        QaoaParams p = QaoaParams::random(1, rng);
        max_gap = std::max(max_gap, std::fabs(traj.expectation(p) -
                                              ideal.expectation(p)));
    }
    EXPECT_GT(max_gap, 0.01);
}

TEST(OverRotation, DeterministicPerSeed)
{
    Rng rng(22);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    NoiseModel nm;
    nm.overRotation = 0.05;
    QaoaParams p = QaoaParams::random(1, rng);
    TrajectorySimulator a(g, nm, 1, 9);
    TrajectorySimulator b(g, nm, 1, 9);
    EXPECT_DOUBLE_EQ(a.expectation(p), b.expectation(p));
    TrajectorySimulator c(g, nm, 1, 10);
    EXPECT_NE(a.expectation(p), c.expectation(p));
}

TEST(OverRotation, MarksModelAsNoisy)
{
    NoiseModel nm;
    EXPECT_TRUE(nm.isIdeal());
    nm.overRotation = 0.02;
    EXPECT_FALSE(nm.isIdeal());
}

TEST(ShotSampling, ConvergesToAnalyticExpectation)
{
    Rng rng(23);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    NoiseModel nm;
    nm.twoQubitDepol = 0.01;
    QaoaParams p = QaoaParams::random(1, rng);
    TrajectorySimulator exact(g, nm, 64, 3);
    double reference = exact.expectation(p);
    TrajectorySimulator sampled(g, nm, 64, 3);
    EXPECT_NEAR(sampled.sampledExpectation(p, 60000), reference, 0.15);
}

TEST(TranspiledModel, InflatesWithCircuitSize)
{
    NoiseModel base = noise::ibmKolkata();
    NoiseModel small = noise::transpiled(base, 6);
    NoiseModel large = noise::transpiled(base, 14);
    EXPECT_GT(small.twoQubitDepol, base.twoQubitDepol);
    EXPECT_GT(large.twoQubitDepol, small.twoQubitDepol);
    EXPECT_LT(large.twoQubitDepol, 1.0);
    // Readout is size-independent.
    EXPECT_DOUBLE_EQ(large.readoutError, base.readoutError);
    // Ideal stays ideal.
    EXPECT_TRUE(noise::transpiled(noise::ideal(), 10).isIdeal());
}

TEST(TranspiledModel, CnotMultiplicityMatchesRouterScale)
{
    // The multiplicity model must bracket what our own SABRE measures
    // (~6-9 CNOTs/edge on falcon-27 between 6 and 14 nodes) from above
    // (stock compilers do worse).
    EXPECT_GE(noise::cnotsPerRzz(6), 6.0);
    EXPECT_GE(noise::cnotsPerRzz(14), 9.0);
    EXPECT_LT(noise::cnotsPerRzz(14), 40.0);
}

TEST(DeviceRunModel, DegradesStochasticChannels)
{
    NoiseModel base = noise::rigettiAspenM3();
    NoiseModel run = noise::deviceRun(base);
    EXPECT_GT(run.twoQubitDepol, base.twoQubitDepol);
    EXPECT_GT(run.readoutError, base.readoutError);
    EXPECT_GT(run.zzCrosstalk, base.zzCrosstalk);
    EXPECT_LE(run.twoQubitDepol, 0.5);
    EXPECT_LE(run.readoutError, 0.4);
    // Coherent calibration error is untouched.
    EXPECT_DOUBLE_EQ(run.overRotation, base.overRotation);
}

TEST(ZzCrosstalk, DistortsLandscapeCoherently)
{
    Rng rng(30);
    Graph g = gen::connectedGnp(7, 0.5, rng);
    QaoaSimulator ideal(g);
    NoiseModel nm;
    nm.zzCrosstalk = 0.4;
    TrajectorySimulator traj(g, nm, 1, 3);
    double gap = 0.0;
    for (int t = 0; t < 8; ++t) {
        QaoaParams p = QaoaParams::random(1, rng);
        gap = std::max(gap, std::fabs(traj.expectation(p) -
                                      ideal.expectation(p)));
    }
    EXPECT_GT(gap, 0.02);
    // Coherent: two simulators with the same seed agree exactly.
    TrajectorySimulator again(g, nm, 1, 3);
    QaoaParams p({0.9}, {0.4});
    TrajectorySimulator first(g, nm, 1, 3);
    EXPECT_DOUBLE_EQ(first.expectation(p), again.expectation(p));
}

TEST(AsymmetricReadout, BiasActivatesWithBrokenSymmetry)
{
    // The QAOA state has <Z_i> = 0 by symmetry, so asymmetric readout
    // alone shifts each edge only by the constant b_u * b_v; combined
    // with amplitude damping (which breaks the symmetry) the bias
    // becomes state-dependent.
    Rng rng(31);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    QaoaParams p = QaoaParams::random(1, rng);

    NoiseModel symmetric;
    symmetric.readoutError = 0.06;
    NoiseModel asymmetric = symmetric;
    asymmetric.readoutAsymmetry = 0.5;

    TrajectorySimulator sym(g, symmetric, 1, 5);
    TrajectorySimulator asym(g, asymmetric, 1, 5);
    // Readout-only, both are deterministic; they must differ.
    EXPECT_NE(sym.expectation(p), asym.expectation(p));
}

TEST(DurationScaledNoise, QuietAtSmallAngles)
{
    Rng rng(32);
    Graph g = gen::connectedGnp(7, 0.5, rng);
    NoiseModel nm;
    nm.twoQubitDepol = 0.12;
    nm.durationScaledNoise = true;
    QaoaSimulator ideal(g);

    // Mean absolute deviation from ideal at small vs large gamma.
    auto deviation = [&](double gamma) {
        TrajectorySimulator traj(g, nm, 200, 9);
        QaoaParams p({gamma}, {0.4});
        return std::fabs(traj.expectation(p) - ideal.expectation(p));
    };
    // Small-angle cost layers are quieter (shorter pulses).
    EXPECT_LT(deviation(0.05), deviation(3.0) + 0.05);
}

TEST(ShotSampling, FewShotsAreNoisierThanMany)
{
    // Dispersion across repeated estimates should shrink with shots.
    Rng rng(24);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    NoiseModel nm;
    nm.twoQubitDepol = 0.01;
    QaoaParams p = QaoaParams::random(1, rng);

    auto dispersion = [&](int shots, std::uint64_t seed0) {
        std::vector<double> vals;
        for (int r = 0; r < 8; ++r) {
            TrajectorySimulator sim(g, nm, 4, seed0 + r);
            vals.push_back(sim.sampledExpectation(p, shots));
        }
        double mean = 0.0;
        for (double v : vals)
            mean += v / vals.size();
        double var = 0.0;
        for (double v : vals)
            var += (v - mean) * (v - mean) / vals.size();
        return var;
    };
    EXPECT_GT(dispersion(64, 100), dispersion(8192, 200));
}

} // namespace
} // namespace redqaoa
