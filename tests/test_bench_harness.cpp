/**
 * @file
 * Benchmark-harness tests: figure registration and lookup, --filter
 * regex semantics, the aggregate JSON document structure (serialized
 * and parsed back with the in-tree parser), determinism of quick-scale
 * figure runs under their fixed seeds, and the JSON value type itself.
 *
 * This binary links the real figure object library, so the registry
 * contains every paper figure in addition to the test-local ones
 * registered below.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <regex>
#include <set>

#include "bench/harness/bench_runner.hpp"
#include "bench/harness/figure.hpp"
#include "common/json.hpp"

using namespace redqaoa;
using bench::FigureContext;
using bench::FigureRegistry;
using json::Value;

// A trivial deterministic figure used to probe the runner itself.
REDQAOA_REGISTER_FIGURE(zztest_probe, "Test probe",
                        "deterministic figure for harness tests")
{
    ctx.out("probe text %d\n", ctx.scale(1, 2));
    ctx.sink.metric("scale_value", ctx.scale(1.0, 2.0));
    ctx.sink.series("squares", {1.0, 4.0, 9.0});
    ctx.sink.seriesPoint("appended", 7.0);
    ctx.sink.seriesPoint("appended", 8.0);
    ctx.sink.labels("names", {"a", "b"});
    ctx.sink.note("probe note");
}

namespace {

Value
runParsed(const std::string &filter, bool quick)
{
    bench::RunOptions opts;
    opts.quick = quick;
    opts.filter = filter;
    opts.text_out = nullptr;
    // Serialize and re-parse so the test exercises the full round trip
    // that CI consumers (compare_bench.py) rely on.
    return Value::parse(bench::runFigures(opts).dump(2));
}

} // namespace

// --------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------

TEST(FigureRegistry, AllPaperFiguresRegistered)
{
    const auto &reg = FigureRegistry::instance();
    // 24 figure panels + 2 ablations + table 1 + the thread-scaling
    // micro study.
    const char *expected[] = {
        "fig01", "fig02", "fig03", "fig05", "fig06", "fig07",
        "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
        "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
        "ablation_cooling", "ablation_threshold", "table1",
        "micro_parallel",
    };
    for (const char *name : expected) {
        const bench::FigureInfo *info = reg.find(name);
        ASSERT_NE(info, nullptr) << "missing figure " << name;
        EXPECT_EQ(info->name, name);
        EXPECT_NE(info->fn, nullptr);
        EXPECT_FALSE(info->title.empty());
        EXPECT_FALSE(info->description.empty());
    }
    // 28 paper figures + the test-local probe.
    EXPECT_GE(reg.all().size(), 29u);
}

TEST(FigureRegistry, AllIsSortedAndUnique)
{
    auto figures = FigureRegistry::instance().all();
    std::set<std::string> names;
    for (std::size_t i = 0; i < figures.size(); ++i) {
        names.insert(figures[i]->name);
        if (i > 0) {
            EXPECT_LT(figures[i - 1]->name, figures[i]->name);
        }
    }
    EXPECT_EQ(names.size(), figures.size());
}

TEST(FigureRegistry, FindUnknownReturnsNull)
{
    EXPECT_EQ(FigureRegistry::instance().find("no_such_figure"),
              nullptr);
}

TEST(FigureRegistry, DuplicateRegistrationThrows)
{
    bench::FigureInfo dup;
    dup.name = "fig01";
    dup.title = "dup";
    dup.description = "dup";
    EXPECT_THROW(FigureRegistry::instance().add(dup),
                 std::runtime_error);
}

// --------------------------------------------------------------------
// Filter semantics (what --filter passes through to)
// --------------------------------------------------------------------

TEST(FigureFilter, AnchoredRegexSelectsExactSet)
{
    auto hits = FigureRegistry::instance().match("^fig0[12]$");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->name, "fig01");
    EXPECT_EQ(hits[1]->name, "fig02");
}

TEST(FigureFilter, UnanchoredRegexIsSubstringSearch)
{
    auto hits = FigureRegistry::instance().match("ablation");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->name, "ablation_cooling");
    EXPECT_EQ(hits[1]->name, "ablation_threshold");
}

TEST(FigureFilter, NoMatchesIsEmpty)
{
    EXPECT_TRUE(
        FigureRegistry::instance().match("^nope$").empty());
}

TEST(FigureFilter, InvalidRegexThrows)
{
    EXPECT_THROW(FigureRegistry::instance().match("fig[0"),
                 std::regex_error);
}

TEST(FigureFilter, RunFiguresRejectsEmptySelection)
{
    bench::RunOptions opts;
    opts.filter = "^nothing_matches_this$";
    EXPECT_THROW(bench::runFigures(opts), std::runtime_error);
}

// --------------------------------------------------------------------
// JSON document structure
// --------------------------------------------------------------------

TEST(BenchDocument, SchemaAndMetadata)
{
    Value doc = runParsed("^zztest_probe$", true);
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("schema_version"), nullptr);
    EXPECT_EQ(doc.find("schema_version")->asNumber(), 1.0);

    const Value *meta = doc.find("metadata");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("tool")->asString(), "redqaoa_bench");
    EXPECT_FALSE(meta->find("git_sha")->asString().empty());
    EXPECT_GE(meta->find("threads")->asNumber(), 1.0);
    EXPECT_TRUE(meta->find("quick")->asBool());
    EXPECT_EQ(meta->find("filter")->asString(), "^zztest_probe$");
    EXPECT_GT(meta->find("timestamp_unix")->asNumber(), 0.0);
    EXPECT_EQ(meta->find("figure_count")->asNumber(), 1.0);
    EXPECT_GE(meta->find("total_wall_seconds")->asNumber(), 0.0);
}

TEST(BenchDocument, FigureEntryStructure)
{
    Value doc = runParsed("^zztest_probe$", true);
    const Value *figures = doc.find("figures");
    ASSERT_NE(figures, nullptr);
    ASSERT_TRUE(figures->isArray());
    ASSERT_EQ(figures->size(), 1u);

    const Value &fig = figures->asArray()[0];
    EXPECT_EQ(fig.find("name")->asString(), "zztest_probe");
    EXPECT_EQ(fig.find("title")->asString(), "Test probe");
    EXPECT_TRUE(fig.find("quick")->asBool());
    EXPECT_GE(fig.find("wall_seconds")->asNumber(), 0.0);

    // Quick scale picked the quick value.
    const Value *metrics = fig.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("scale_value")->asNumber(), 1.0);

    const Value *series = fig.find("series");
    ASSERT_NE(series, nullptr);
    const Value *squares = series->find("squares");
    ASSERT_NE(squares, nullptr);
    ASSERT_EQ(squares->size(), 3u);
    EXPECT_EQ(squares->asArray()[2].asNumber(), 9.0);
    const Value *appended = series->find("appended");
    ASSERT_NE(appended, nullptr);
    ASSERT_EQ(appended->size(), 2u);
    EXPECT_EQ(appended->asArray()[0].asNumber(), 7.0);
    EXPECT_EQ(appended->asArray()[1].asNumber(), 8.0);

    const Value *labels = fig.find("labels");
    ASSERT_NE(labels, nullptr);
    ASSERT_EQ(labels->find("names")->size(), 2u);
    EXPECT_EQ(labels->find("names")->asArray()[1].asString(), "b");

    const Value *notes = fig.find("notes");
    ASSERT_NE(notes, nullptr);
    ASSERT_EQ(notes->size(), 1u);
    EXPECT_EQ(notes->asArray()[0].asString(), "probe note");

    // Raw text must NOT leak into the JSON document.
    EXPECT_EQ(fig.find("text"), nullptr);
}

TEST(BenchDocument, FullScaleFlagPropagates)
{
    Value doc = runParsed("^zztest_probe$", false);
    const Value &fig = doc.find("figures")->asArray()[0];
    EXPECT_FALSE(fig.find("quick")->asBool());
    EXPECT_EQ(fig.find("metrics")->find("scale_value")->asNumber(),
              2.0);
}

// --------------------------------------------------------------------
// Determinism: quick-scale real figures under their fixed seeds
// --------------------------------------------------------------------

TEST(BenchDeterminism, QuickFiguresAreRunToRunDeterministic)
{
    // Two cheap real figures: one exact-statevector (fig06), one
    // dataset-statistics (table1). Both seed their RNGs with fixed
    // constants and the evaluation engine is thread-count invariant,
    // so the structured payloads must match bit-for-bit across runs.
    const std::string filter = "^(fig06|table1)$";
    Value a = runParsed(filter, true);
    Value b = runParsed(filter, true);

    const auto &figs_a = a.find("figures")->asArray();
    const auto &figs_b = b.find("figures")->asArray();
    ASSERT_EQ(figs_a.size(), 2u);
    ASSERT_EQ(figs_b.size(), figs_a.size());
    for (std::size_t i = 0; i < figs_a.size(); ++i) {
        for (const char *section : {"metrics", "series", "labels"}) {
            const Value *sa = figs_a[i].find(section);
            const Value *sb = figs_b[i].find(section);
            ASSERT_EQ(sa == nullptr, sb == nullptr);
            if (sa) {
                EXPECT_EQ(sa->dump(), sb->dump())
                    << figs_a[i].find("name")->asString() << " "
                    << section << " differs between identical runs";
            }
        }
    }
}

// --------------------------------------------------------------------
// JSON value type
// --------------------------------------------------------------------

TEST(Json, RoundTripNestedDocument)
{
    Value doc = Value::object();
    doc["string"] = Value("he said \"hi\"\n\ttab \\ slash");
    doc["int"] = Value(42);
    doc["neg"] = Value(-3.25);
    doc["bool"] = Value(true);
    doc["null"] = Value();
    Value arr = Value::array();
    arr.push(Value(1.5e-9));
    arr.push(Value("x"));
    Value inner = Value::object();
    inner["k"] = Value(7);
    arr.push(std::move(inner));
    doc["arr"] = std::move(arr);

    for (int indent : {-1, 0, 2}) {
        Value back = Value::parse(doc.dump(indent));
        EXPECT_EQ(back.find("string")->asString(),
                  "he said \"hi\"\n\ttab \\ slash");
        EXPECT_EQ(back.find("int")->asNumber(), 42.0);
        EXPECT_EQ(back.find("neg")->asNumber(), -3.25);
        EXPECT_TRUE(back.find("bool")->asBool());
        EXPECT_TRUE(back.find("null")->isNull());
        const auto &a = back.find("arr")->asArray();
        ASSERT_EQ(a.size(), 3u);
        EXPECT_DOUBLE_EQ(a[0].asNumber(), 1.5e-9);
        EXPECT_EQ(a[2].find("k")->asNumber(), 7.0);
    }
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Value obj = Value::object();
    obj["zebra"] = Value(1);
    obj["apple"] = Value(2);
    obj["mango"] = Value(3);
    std::string compact = obj.dump();
    EXPECT_EQ(compact, "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    Value arr = Value::array();
    arr.push(Value(std::nan("")));
    arr.push(Value(1.0 / 0.0));
    EXPECT_EQ(arr.dump(), "[null,null]");
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_THROW(Value::parse(""), std::runtime_error);
    EXPECT_THROW(Value::parse("{"), std::runtime_error);
    EXPECT_THROW(Value::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Value::parse("{\"a\":1} trailing"),
                 std::runtime_error);
    EXPECT_THROW(Value::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(Value::parse("truthy"), std::runtime_error);
}

TEST(Json, ParserHandlesEscapes)
{
    Value v = Value::parse("\"a\\u0041\\n\\\"\"");
    EXPECT_EQ(v.asString(), "aA\n\"");
}

TEST(Json, TypeMismatchThrows)
{
    Value num(1.0);
    EXPECT_THROW(num.asString(), std::runtime_error);
    EXPECT_THROW(num.asArray(), std::runtime_error);
    Value obj = Value::object();
    EXPECT_THROW(obj.push(Value(1)), std::runtime_error);
}

TEST(Json, MetricOverwriteKeepsSingleEntry)
{
    bench::ResultSink sink;
    sink.metric("m", 1.0);
    sink.metric("m", 2.0);
    Value out = sink.toJson();
    const Value *metrics = out.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->size(), 1u);
    EXPECT_EQ(metrics->find("m")->asNumber(), 2.0);
}
