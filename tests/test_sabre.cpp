/**
 * @file
 * SABRE router tests: routed circuits must respect device coupling,
 * preserve circuit semantics under the tracked qubit permutation, and
 * the multi-trial protocol must never do worse than a single trial.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "circuit/qaoa_builder.hpp"
#include "circuit/sabre.hpp"
#include "circuit/topologies.hpp"
#include "graph/generators.hpp"
#include "quantum/maxcut.hpp"
#include "quantum/statevector.hpp"

namespace redqaoa {
namespace {

std::vector<int>
identityLayout(int n)
{
    std::vector<int> l(static_cast<std::size_t>(n));
    std::iota(l.begin(), l.end(), 0);
    return l;
}

void
expectAllTwoQubitGatesCoupled(const Circuit &c, const CouplingMap &dev)
{
    for (const GateOp &g : c.gates()) {
        if (isTwoQubit(g.kind)) {
            EXPECT_TRUE(dev.coupled(g.q0, g.q1))
                << gateName(g.kind) << " on (" << g.q0 << "," << g.q1
                << ")";
        }
    }
}

TEST(Sabre, LineCircuitOnLineDeviceNeedsNoSwaps)
{
    // Nearest-neighbor RZZs on a path device route swap-free under the
    // identity layout.
    CouplingMap dev("line", gen::path(6));
    Circuit c(6);
    for (int q = 0; q + 1 < 6; ++q)
        c.addRzz(q, q + 1, 0.3);
    SabreRouter router(dev);
    RouteResult res = router.route(c, identityLayout(6));
    EXPECT_EQ(res.swapCount, 0);
    expectAllTwoQubitGatesCoupled(res.circuit, dev);
}

TEST(Sabre, DistantGateGetsRouted)
{
    CouplingMap dev("line", gen::path(5));
    Circuit c(5);
    c.addRzz(0, 4, 0.5); // Distance 4: needs swaps.
    SabreRouter router(dev);
    RouteResult res = router.route(c, identityLayout(5));
    EXPECT_GE(res.swapCount, 3);
    expectAllTwoQubitGatesCoupled(res.circuit, dev);
}

TEST(Sabre, RoutesDenseQaoaOnFalcon)
{
    Rng rng(1);
    Graph g = gen::connectedGnp(10, 0.5, rng);
    QaoaParams p = QaoaParams::random(1, rng);
    Circuit c = buildQaoaCircuit(g, p, true);
    CouplingMap dev = topologies::falcon27();
    SabreRouter router(dev);
    RouteResult res = router.routeBestOf(c, 4, rng);
    expectAllTwoQubitGatesCoupled(res.circuit, dev);
    // Every logical gate survives routing (plus inserted swaps).
    EXPECT_EQ(res.circuit.count(GateKind::RZZ), g.numEdges());
    EXPECT_EQ(res.circuit.count(GateKind::MEASURE), 10);
    EXPECT_EQ(res.circuit.count(GateKind::SWAP), res.swapCount);
}

TEST(Sabre, RoutedCircuitPreservesSemantics)
{
    // Execute the routed circuit (including SWAPs) and undo the final
    // layout: energies must match the unrouted circuit.
    Rng rng(2);
    Graph g = gen::connectedGnp(5, 0.5, rng);
    QaoaParams p = QaoaParams::random(1, rng);
    Circuit c = buildQaoaCircuit(g, p, false);
    CouplingMap dev("line", gen::path(5));
    SabreRouter router(dev);
    RouteResult res = router.route(c, identityLayout(5));

    Statevector psi(5);
    for (const GateOp &op : res.circuit.gates()) {
        switch (op.kind) {
          case GateKind::H:
            psi.applyH(op.q0);
            break;
          case GateKind::RX:
            psi.applyRx(op.q0, op.angle);
            break;
          case GateKind::RZ:
            psi.applyRz(op.q0, op.angle);
            break;
          case GateKind::CNOT:
            psi.applyCnot(op.q0, op.q1);
            break;
          case GateKind::RZZ:
            psi.applyRzz(op.q0, op.q1, op.angle);
            break;
          case GateKind::SWAP:
            psi.applyCnot(op.q0, op.q1);
            psi.applyCnot(op.q1, op.q0);
            psi.applyCnot(op.q0, op.q1);
            break;
          default:
            break;
        }
    }
    // <Z_u Z_v> read at the physical locations of u and v.
    double e = 0.0;
    for (const Edge &edge : g.edges()) {
        int pu = res.finalLayout[static_cast<std::size_t>(edge.u)];
        int pv = res.finalLayout[static_cast<std::size_t>(edge.v)];
        e += 0.5 * (1.0 - psi.zzExpectation(pu, pv));
    }
    QaoaSimulator sim(g);
    EXPECT_NEAR(e, sim.expectation(p), 1e-9);
}

TEST(Sabre, BestOfTrialsNotWorseThanFirstTrial)
{
    Rng rng(3);
    Graph g = gen::connectedGnp(8, 0.5, rng);
    QaoaParams p = QaoaParams::random(1, rng);
    Circuit c = buildQaoaCircuit(g, p, false);
    CouplingMap dev = topologies::falcon27();
    SabreRouter router(dev);

    Rng rng_multi(77);
    RouteResult multi = router.routeBestOf(c, 8, rng_multi);
    Rng rng_single(77);
    RouteResult single = router.routeBestOf(c, 1, rng_single);
    EXPECT_LE(multi.depth, single.depth);
}

TEST(Sabre, RejectsOversizedCircuits)
{
    CouplingMap dev("line", gen::path(3));
    Circuit c(5);
    SabreRouter router(dev);
    EXPECT_THROW(router.route(c, {0, 1, 2, 3, 4}),
                 std::invalid_argument);
}

TEST(Sabre, InitialLayoutRespected)
{
    CouplingMap dev("line", gen::path(4));
    Circuit c(2);
    c.addH(0);
    c.addH(1);
    SabreRouter router(dev);
    RouteResult res = router.route(c, {3, 1});
    // H gates must land on physical qubits 3 and 1.
    int on3 = 0, on1 = 0;
    for (const GateOp &g : res.circuit.gates()) {
        if (g.kind == GateKind::H && g.q0 == 3)
            ++on3;
        if (g.kind == GateKind::H && g.q0 == 1)
            ++on1;
    }
    EXPECT_EQ(on3, 1);
    EXPECT_EQ(on1, 1);
}

} // namespace
} // namespace redqaoa
