/**
 * @file
 * Light-cone evaluator tests: per-edge cone simulation must equal the
 * full statevector exactly when no cone is truncated (the §3.3 locality
 * argument), stay close under mild truncation, and scale to graphs far
 * beyond statevector reach.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "quantum/evaluator.hpp"
#include "quantum/lightcone.hpp"
#include "quantum/maxcut.hpp"

namespace redqaoa {
namespace {

void
expectMatchesStatevector(const Graph &g, int p, Rng &rng, double tol)
{
    QaoaSimulator sv(g);
    LightconeEvaluator lc(g, p, 26);
    ASSERT_EQ(lc.truncatedCones(), 0);
    for (int t = 0; t < 6; ++t) {
        QaoaParams params = QaoaParams::random(p, rng);
        EXPECT_NEAR(lc.expectation(params), sv.expectation(params), tol)
            << g.summary() << " p=" << p;
    }
}

TEST(Lightcone, ExactOnPathP1)
{
    Rng rng(1);
    expectMatchesStatevector(gen::path(8), 1, rng, 1e-9);
}

TEST(Lightcone, ExactOnPathP2)
{
    Rng rng(2);
    expectMatchesStatevector(gen::path(9), 2, rng, 1e-9);
}

TEST(Lightcone, ExactOnCycleP2)
{
    Rng rng(3);
    expectMatchesStatevector(gen::cycle(10), 2, rng, 1e-9);
}

TEST(Lightcone, ExactOnSparseRandomP1)
{
    Rng rng(4);
    Graph g = gen::connectedGnp(11, 0.2, rng);
    expectMatchesStatevector(g, 1, rng, 1e-9);
}

TEST(Lightcone, ExactOnSparseRandomP2)
{
    Rng rng(5);
    Graph g = gen::connectedGnp(10, 0.2, rng);
    expectMatchesStatevector(g, 2, rng, 1e-9);
}

TEST(Lightcone, ExactOnTreeP3)
{
    Rng rng(6);
    expectMatchesStatevector(gen::karyTree(12, 2), 3, rng, 1e-9);
}

TEST(Lightcone, ExactWhenConeIsWholeGraph)
{
    // Dense small graph: the cone covers everything and the evaluator
    // degenerates to a full simulation.
    Rng rng(7);
    Graph g = gen::connectedGnp(7, 0.6, rng);
    expectMatchesStatevector(g, 2, rng, 1e-9);
}

TEST(Lightcone, TruncationIsControlled)
{
    Rng rng(8);
    Graph g = gen::connectedGnp(12, 0.35, rng);
    QaoaSimulator sv(g);
    LightconeEvaluator truncated(g, 2, 7); // Force truncation.
    EXPECT_GT(truncated.truncatedCones(), 0);
    double worst = 0.0;
    for (int t = 0; t < 6; ++t) {
        QaoaParams params = QaoaParams::random(2, rng);
        double err = std::abs(truncated.expectation(params) -
                              sv.expectation(params)) /
                     g.numEdges();
        worst = std::max(worst, err);
    }
    // Per-edge error stays small even with aggressive truncation.
    EXPECT_LT(worst, 0.15);
}

TEST(Lightcone, ScalesToHundredNodes)
{
    Rng rng(9);
    Graph g = gen::connectedGnp(100, 0.03, rng);
    LightconeEvaluator lc(g, 2, 18);
    QaoaParams params = QaoaParams::random(2, rng);
    double v = lc.expectation(params);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, g.numEdges());
    EXPECT_LE(lc.maxConeSize(), 18);
}

TEST(Lightcone, FactoryPicksSensibleBackends)
{
    Rng rng(10);
    Graph small = gen::connectedGnp(8, 0.4, rng);
    Graph large = gen::connectedGnp(40, 0.1, rng);
    EXPECT_EQ(makeIdealEvaluator(small, 2)->describe(), "statevector");
    EXPECT_EQ(makeIdealEvaluator(large, 1)->describe(), "analytic-p1");
    EXPECT_EQ(makeIdealEvaluator(large, 2)->describe(), "lightcone");
}

TEST(Lightcone, FactoryBackendsAgreeOnMediumGraph)
{
    Rng rng(11);
    Graph g = gen::connectedGnp(12, 0.25, rng);
    auto exact = makeIdealEvaluator(g, 1, 16);
    auto analytic = std::make_unique<AnalyticEvaluator>(g);
    auto cone = std::make_unique<LightconeCutEvaluator>(g, 1, 26);
    for (int t = 0; t < 5; ++t) {
        QaoaParams params = QaoaParams::random(1, rng);
        double e = exact->expectation(params);
        EXPECT_NEAR(analytic->expectation(params), e, 1e-9);
        EXPECT_NEAR(cone->expectation(params), e, 1e-9);
    }
}

} // namespace
} // namespace redqaoa
