/**
 * @file
 * src/common/json tests, with the emphasis on untrusted input: the
 * service layer feeds the parser raw network bytes, so beyond the
 * round-trip contracts the suite asserts that malformed documents —
 * truncations, random garbage, hostile nesting — always surface as a
 * clean std::runtime_error with a byte offset in the message, never a
 * crash, hang, or out-of-bounds read (run under ASan in CI).
 */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace redqaoa {
namespace {

using json::Value;

/** A representative document exercising every value type. */
std::string
sampleDocument()
{
    Value doc = Value::object();
    doc["schema_version"] = 1;
    doc["name"] = "red-qaoa \"service\"\n\t";
    doc["ok"] = true;
    doc["missing"] = Value();
    Value arr = Value::array();
    arr.push(Value(1.5));
    arr.push(Value(-3));
    arr.push(Value(2.2250738585072014e-308));
    arr.push(Value(std::string("nested\\path")));
    doc["values"] = std::move(arr);
    Value inner = Value::object();
    inner["unicode"] = "\u00e9\u20ac";
    inner["empty_obj"] = Value::object();
    inner["empty_arr"] = Value::array();
    doc["inner"] = std::move(inner);
    return doc.dump(2);
}

/** Expect a parse failure whose message carries an "offset" marker. */
void
expectCleanFailure(const std::string &text)
{
    try {
        Value::parse(text);
        FAIL() << "expected parse failure for: " << text.substr(0, 64);
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
            << "no offset in: " << e.what();
    }
}

TEST(Json, RoundTripPreservesStructureAndValues)
{
    std::string text = sampleDocument();
    Value parsed = Value::parse(text);
    EXPECT_EQ(parsed.dump(2), text);
    // Compact form reparses to the same document too.
    EXPECT_EQ(Value::parse(parsed.dump()).dump(2), text);
    EXPECT_EQ(parsed.find("name")->asString(), "red-qaoa \"service\"\n\t");
    EXPECT_TRUE(parsed.find("missing")->isNull());
    EXPECT_EQ(parsed.find("values")->asArray()[1].asNumber(), -3.0);
}

TEST(Json, NumbersRoundTripExactly)
{
    for (double v :
         {0.0, -0.0, 1.0, -1.0, 0.1, 1e-15, 9.007199254740991e15,
          2.2250738585072014e-308, 1.7976931348623157e308, 3.141592653589793,
          -123456789.123456789}) {
        Value parsed = Value::parse(Value(v).dump());
        // Bit-exact round trip is what lets the service promise
        // responses identical to direct EvalEngine calls.
        EXPECT_EQ(parsed.asNumber(), v) << v;
    }
}

TEST(Json, MalformedDocumentsFailWithOffsets)
{
    const char *bad[] = {
        "",
        "   ",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "{\"a\"}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{a:1}",
        "{1:2}",
        "[1,]",
        "[1 2]",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"trunc \\u12",
        "\"bad hex \\u12zz\"",
        "tru",
        "truex",
        "nul",
        "falsy",
        "-",
        "+1",
        "01",
        ".5",
        "1.",
        "1e",
        "1.2.3",
        "--4",
        "0x10",
        "inf",
        "nan",
        "@",
        "{\"a\":1} trailing",
        "[1][2]",
        "\x01",
        "{\"\xff\xfe\":", // Raw high bytes inside an unterminated doc.
    };
    for (const char *text : bad)
        expectCleanFailure(text);
}

TEST(Json, ErrorMessagesPointAtTheFailingOffset)
{
    auto offsetOf = [](const std::string &text) -> std::string {
        try {
            Value::parse(text);
        } catch (const std::runtime_error &e) {
            std::string what = e.what();
            auto at = what.rfind("offset ");
            return what.substr(at + 7);
        }
        return "no-error";
    };
    EXPECT_EQ(offsetOf("[1, 2, x]"), "7");     // The bad token itself.
    EXPECT_EQ(offsetOf("{\"a\": 1 \"b\"}"), "8"); // Missing comma.
    EXPECT_EQ(offsetOf("[1, --4]"), "4");      // Bad number start.
    EXPECT_EQ(offsetOf("nulx"), "0");          // Bad literal start.
}

TEST(Json, DepthLimitRejectsHostileNesting)
{
    // One level under the cap parses; past the cap throws cleanly
    // instead of overflowing the parse stack.
    std::string deep_ok(Value::kMaxParseDepth, '[');
    deep_ok += "1";
    deep_ok.append(Value::kMaxParseDepth, ']');
    EXPECT_NO_THROW(Value::parse(deep_ok));

    std::string too_deep(Value::kMaxParseDepth + 1, '[');
    too_deep += "1";
    too_deep.append(Value::kMaxParseDepth + 1, ']');
    expectCleanFailure(too_deep);

    // Far past the cap — the classic stack-smash input, 100k levels.
    expectCleanFailure(std::string(100000, '['));
    std::string obj_bomb;
    for (int i = 0; i < 100000; ++i)
        obj_bomb += "{\"a\":";
    expectCleanFailure(obj_bomb);

    // The cap is a parameter: a tight caller can tighten it.
    EXPECT_NO_THROW(Value::parse("[[1]]", 2));
    EXPECT_THROW(Value::parse("[[1]]", 1), std::runtime_error);
}

TEST(Json, EveryTruncationOfAValidDocumentFailsCleanly)
{
    std::string text = sampleDocument();
    for (std::size_t n = 0; n < text.size(); ++n) {
        std::string prefix = text.substr(0, n);
        // A strict prefix of a multi-container document can never be a
        // complete document itself; it must throw, not crash.
        EXPECT_THROW(Value::parse(prefix), std::runtime_error)
            << "prefix length " << n;
    }
    EXPECT_NO_THROW(Value::parse(text));
}

TEST(Json, RandomGarbageNeverCrashesTheParser)
{
    Rng rng(4242);
    // Full byte range, including NUL and high bytes.
    for (int trial = 0; trial < 2000; ++trial) {
        std::size_t len = rng.index(64);
        std::string text;
        for (std::size_t i = 0; i < len; ++i)
            text += static_cast<char>(rng.index(256));
        try {
            Value::parse(text);
        } catch (const std::runtime_error &) {
            // Expected for almost every draw.
        }
    }
    // Structural soup: JSON punctuation only, which digs deeper into
    // the container state machine than raw bytes do.
    const char soup[] = "{}[]\",:0123456789.eE+-truefalsenull \t\n";
    for (int trial = 0; trial < 2000; ++trial) {
        std::size_t len = rng.index(96);
        std::string text;
        for (std::size_t i = 0; i < len; ++i)
            text += soup[rng.index(sizeof soup - 1)];
        try {
            Value::parse(text);
        } catch (const std::runtime_error &) {
        }
    }
}

TEST(Json, MutatedValidDocumentsFailCleanlyOrReparse)
{
    // Single-byte corruptions of a valid document: each either parses
    // (the corruption landed in a string / stayed valid) or throws the
    // annotated error. Either way: no crash, no hang.
    std::string base = sampleDocument();
    Rng rng(99);
    for (int trial = 0; trial < 2000; ++trial) {
        std::string text = base;
        std::size_t at = rng.index(text.size());
        text[at] = static_cast<char>(rng.index(256));
        try {
            Value parsed = Value::parse(text);
            (void)parsed.dump();
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("offset"),
                      std::string::npos);
        }
    }
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    Value v(std::numeric_limits<double>::infinity());
    EXPECT_EQ(v.dump(), "null");
    Value n(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(n.dump(), "null");
}

TEST(Json, TypedAccessorMismatchesThrow)
{
    Value num(1.0);
    EXPECT_THROW(num.asString(), std::runtime_error);
    EXPECT_THROW(num.asArray(), std::runtime_error);
    Value str("x");
    EXPECT_THROW(str.asNumber(), std::runtime_error);
    EXPECT_THROW(str.push(Value(1)), std::runtime_error);
    Value obj = Value::object();
    EXPECT_THROW(obj.asBool(), std::runtime_error);
    EXPECT_EQ(obj.find("absent"), nullptr);
    EXPECT_EQ(num.find("absent"), nullptr);
}

} // namespace
} // namespace redqaoa
