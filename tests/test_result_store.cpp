/**
 * @file
 * ResultStore tests. The load-bearing contracts:
 *  - iso-canonical keying: every node relabeling of a graph maps to
 *    ONE store key, non-isomorphic graphs map to distinct keys, and
 *    the canonical-vs-fallback branch is itself iso-invariant;
 *  - records round-trip across a close/reopen bit-exactly;
 *  - point values only serve the exact recording presentation;
 *  - every corruption mode (truncated tail, flipped payload byte,
 *    wrong schema version) loads as cold WITHOUT an error, and the
 *    next append rewrites a clean log;
 *  - the transfer index returns the nearest structurally similar
 *    donor, deterministically, never the requesting iso-class;
 *  - an engine attached to a warmed store serves repeat traffic from
 *    disk: bit-identical values with zero fresh evaluations.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "engine/eval_engine.hpp"
#include "engine/result_store.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"

namespace redqaoa {
namespace {

namespace fs = std::filesystem;

/** Fresh store directory under the test temp root, removed on exit. */
class TempStoreDir
{
  public:
    TempStoreDir()
    {
        static int counter = 0;
        path_ = fs::path(::testing::TempDir()) /
                ("result_store_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::remove_all(path_);
    }
    ~TempStoreDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    fs::path logPath() const { return path_ / "results.log"; }

  private:
    fs::path path_;
};

Graph
permuted(const Graph &g, const std::vector<int> &perm)
{
    Graph out(g.numNodes());
    for (const Edge &e : g.edges())
        out.addEdge(perm[static_cast<std::size_t>(e.u)],
                    perm[static_cast<std::size_t>(e.v)]);
    return out;
}

std::vector<int>
randomPermutation(int n, Rng &rng)
{
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    return perm;
}

std::vector<std::uint64_t>
bitsOf(const std::vector<double> &x)
{
    std::vector<std::uint64_t> bits;
    bits.reserve(x.size());
    for (double v : x)
        bits.push_back(std::bit_cast<std::uint64_t>(v));
    return bits;
}

ResultStore::OptimizeRecord
sampleRecord()
{
    ResultStore::OptimizeRecord rec;
    rec.xBits = bitsOf({0.1 + 0.2, -1.75, 3.5e-3, 2.0});
    rec.valueBits = std::bit_cast<std::uint64_t>(-4.321987654321);
    rec.evaluations = 123;
    rec.restarts = 3;
    rec.seeded = 1;
    return rec;
}

TEST(ResultStoreKeys, IsoRelabelingsShareOneKey)
{
    Rng rng(11);
    for (int n : {6, 9, 12}) {
        Graph g = gen::connectedGnp(n, 0.4, rng);
        std::string key = ResultStore::graphKey(g);
        for (int trial = 0; trial < 8; ++trial) {
            Graph h = permuted(g, randomPermutation(n, rng));
            // The canonical-vs-fallback gate is iso-invariant, so
            // every relabeling takes the same branch; on the
            // canonical branch they share one key.
            std::string hkey = ResultStore::graphKey(h);
            EXPECT_EQ(key.substr(0, 2), hkey.substr(0, 2));
            if (key.rfind("c:", 0) == 0)
                EXPECT_EQ(key, hkey) << "n=" << n << " trial=" << trial;
        }
    }
}

TEST(ResultStoreKeys, NonIsomorphicGraphsGetDistinctKeys)
{
    Rng rng(23);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    ASSERT_EQ(ResultStore::graphKey(g).substr(0, 2), "c:");

    // Flip one edge (add a missing one): different iso class.
    Graph h = g;
    bool changed = false;
    for (Node u = 0; u < h.numNodes() && !changed; ++u)
        for (Node v = u + 1; v < h.numNodes() && !changed; ++v)
            if (!h.hasEdge(u, v))
                changed = h.addEdge(u, v);
    ASSERT_TRUE(changed);
    EXPECT_NE(ResultStore::graphKey(g), ResultStore::graphKey(h));
}

TEST(ResultStoreKeys, SymmetricGraphsFallBackConsistently)
{
    // C12: one WL color class of size 12 -> 12! search bound, far over
    // budget, so both the cycle and its relabelings take the exact-
    // structure fallback (no crash, no factorial search).
    Graph c12 = gen::cycle(12);
    EXPECT_GE(canonicalSearchBound(c12), 1e6);
    std::string key = ResultStore::graphKey(c12);
    EXPECT_EQ(key.substr(0, 2), "x:");
    Rng rng(7);
    Graph h = permuted(c12, randomPermutation(12, rng));
    EXPECT_EQ(ResultStore::graphKey(h).substr(0, 2), "x:");

    // Small rings stay tractable and canonical.
    EXPECT_LT(canonicalSearchBound(gen::cycle(9)), 1e6);
    EXPECT_EQ(ResultStore::graphKey(gen::cycle(9)).substr(0, 2), "c:");
}

TEST(ResultStore, OptimizeRoundTripsAcrossReopenBitExactly)
{
    TempStoreDir dir;
    Rng rng(3);
    Graph g = gen::connectedGnp(8, 0.4, rng);
    std::string key = ResultStore::graphKey(g);
    ResultStore::OptimizeRecord rec = sampleRecord();
    {
        ResultStore store(dir.str());
        EXPECT_TRUE(store.persistent());
        store.recordOptimize(key, "spec", "opt", g, 2, rec);
        ResultStore::OptimizeRecord out;
        ASSERT_TRUE(store.lookupOptimize(key, "spec", "opt", out));
        EXPECT_EQ(out.xBits, rec.xBits);
    }
    ResultStore reopened(dir.str());
    ResultStore::OptimizeRecord out;
    ASSERT_TRUE(reopened.lookupOptimize(key, "spec", "opt", out));
    EXPECT_EQ(out.xBits, rec.xBits);
    EXPECT_EQ(out.valueBits, rec.valueBits);
    EXPECT_EQ(out.evaluations, rec.evaluations);
    EXPECT_EQ(out.restarts, rec.restarts);
    EXPECT_EQ(out.seeded, rec.seeded);
    // Wrong spec/opt key: miss.
    EXPECT_FALSE(reopened.lookupOptimize(key, "spec2", "opt", out));
    EXPECT_FALSE(reopened.lookupOptimize(key, "spec", "opt2", out));
    EXPECT_EQ(reopened.stats().records, 1u);
}

TEST(ResultStore, PointsServeOnlyTheRecordingPresentation)
{
    TempStoreDir dir;
    std::vector<std::uint64_t> bits = bitsOf({0.25, -0.5});
    {
        ResultStore store(dir.str());
        store.appendPoints("c:k", "spec", 42, {{bits, 1.25}});
    }
    ResultStore store(dir.str());
    double value = 0.0;
    ASSERT_TRUE(store.lookupPoint("c:k", "spec", 42, bits, value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(value),
              std::bit_cast<std::uint64_t>(1.25));
    // Same key, different presentation: an isomorphic relabeling may
    // differ in final-ULP rounding, so the store must not serve it.
    EXPECT_FALSE(store.lookupPoint("c:k", "spec", 43, bits, value));
    // Different parameter bits: miss.
    EXPECT_FALSE(store.lookupPoint("c:k", "spec", 42,
                                   bitsOf({0.25, -0.5000001}), value));
}

/** Seed a store with one optimize record + one point batch. */
void
seedStore(const std::string &dir, const Graph &g)
{
    ResultStore store(dir);
    store.recordOptimize(ResultStore::graphKey(g), "spec", "opt", g, 1,
                         sampleRecord());
    store.appendPoints(ResultStore::graphKey(g), "spec", 7,
                       {{bitsOf({0.5, 0.25}), -2.5}});
    ASSERT_EQ(store.stats().records, 2u);
}

TEST(ResultStore, TruncatedTailDropsOnlyTheTornRecord)
{
    TempStoreDir dir;
    Rng rng(5);
    Graph g = gen::connectedGnp(8, 0.4, rng);
    seedStore(dir.str(), g);

    // Tear the last few bytes off the final record (a crash mid-write).
    auto size = fs::file_size(dir.logPath());
    fs::resize_file(dir.logPath(), size - 3);

    ResultStore store(dir.str());
    EXPECT_EQ(store.stats().records, 1u); // Valid prefix kept.
    EXPECT_EQ(store.stats().recoveredDrops, 1u);
    ResultStore::OptimizeRecord out;
    EXPECT_TRUE(store.lookupOptimize(ResultStore::graphKey(g), "spec",
                                     "opt", out));

    // The next append rewrites a clean log covering the new entry.
    store.appendPoints("c:other", "spec", 1, {{bitsOf({1.0}), 0.5}});
    ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.stats().records, 2u);
    EXPECT_EQ(reopened.stats().recoveredDrops, 0u);
}

TEST(ResultStore, FlippedPayloadByteFailsCrcAndLoadsCold)
{
    TempStoreDir dir;
    Rng rng(5);
    Graph g = gen::connectedGnp(8, 0.4, rng);
    seedStore(dir.str(), g);

    // Flip one byte inside the FIRST record's payload: its CRC fails,
    // and everything after an unparseable frame is unreachable.
    {
        std::fstream f(dir.logPath(),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(8 + 8 + 4); // Header, first frame header, into payload.
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        f.seekp(8 + 8 + 4);
        f.write(&byte, 1);
    }
    ResultStore store(dir.str());
    EXPECT_EQ(store.stats().records, 0u);
    EXPECT_EQ(store.stats().recoveredDrops, 1u);
    ResultStore::OptimizeRecord out;
    EXPECT_FALSE(store.lookupOptimize(ResultStore::graphKey(g), "spec",
                                      "opt", out));
    store.recordOptimize("c:fresh", "spec", "opt", g, 1, sampleRecord());
    ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.stats().records, 1u);
    EXPECT_EQ(reopened.stats().recoveredDrops, 0u);
}

TEST(ResultStore, WrongSchemaVersionLoadsColdWithoutError)
{
    TempStoreDir dir;
    Rng rng(5);
    Graph g = gen::connectedGnp(8, 0.4, rng);
    seedStore(dir.str(), g);

    { // Bump the version field: a future-format log must load cold.
        std::fstream f(dir.logPath(),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(4);
        char v = 99;
        f.write(&v, 1);
    }
    ResultStore store(dir.str());
    EXPECT_EQ(store.stats().records, 0u);
    store.appendPoints("c:k", "spec", 1, {{bitsOf({1.0}), 0.5}});
    ResultStore reopened(dir.str()); // Rewritten at OUR version.
    EXPECT_EQ(reopened.stats().records, 1u);
    double value = 0.0;
    EXPECT_TRUE(
        reopened.lookupPoint("c:k", "spec", 1, bitsOf({1.0}), value));
}

TEST(ResultStore, FindDonorPicksNearestOtherIsoClass)
{
    TempStoreDir dir;
    ResultStore store(dir.str());
    Rng rng(17);
    Graph near = gen::connectedGnp(10, 0.4, rng);
    Graph far = gen::connectedGnp(20, 0.2, rng);
    ResultStore::OptimizeRecord nearRec = sampleRecord();
    nearRec.xBits = bitsOf({1.5, -0.5});
    store.recordOptimize(ResultStore::graphKey(near), "spec", "o1", near,
                         1, nearRec);
    store.recordOptimize(ResultStore::graphKey(far), "spec", "o2", far,
                         1, sampleRecord());

    Graph fresh = gen::connectedGnp(11, 0.4, rng);
    ResultStore::TransferDonor donor;
    ASSERT_TRUE(store.findDonor(ResultStore::graphKey(fresh), "spec", 1,
                                fresh, donor));
    EXPECT_EQ(donor.nodes, 10);
    EXPECT_EQ(bitsOf(donor.x), nearRec.xBits);

    // Never donates to its own iso-class (for `near`, only the `far`
    // record remains eligible), other specs, or other layers.
    ASSERT_TRUE(store.findDonor(ResultStore::graphKey(near), "spec", 1,
                                near, donor));
    EXPECT_EQ(donor.nodes, 20);
    EXPECT_FALSE(store.findDonor(ResultStore::graphKey(fresh), "spec2",
                                 1, fresh, donor));
    EXPECT_FALSE(store.findDonor(ResultStore::graphKey(fresh), "spec", 2,
                                 fresh, donor));
}

TEST(ResultStore, EngineServesRestartTrafficFromDiskBitIdentically)
{
    TempStoreDir dir;
    Rng rng(29);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    std::vector<QaoaParams> points;
    for (int i = 0; i < 6; ++i)
        points.push_back(QaoaParams::random(2, rng));

    std::vector<double> cold;
    {
        EvalEngine engine;
        engine.attachStore(
            std::make_shared<ResultStore>(dir.str() + "/shard0"));
        cold = engine.evaluate(g, EvalSpec::ideal(2), points);
        EXPECT_EQ(engine.stats().evaluated, points.size());
        EXPECT_EQ(engine.stats().store.appends, 1u);
    }
    // "Restart": a fresh engine over the same store directory.
    EvalEngine engine;
    engine.attachStore(
        std::make_shared<ResultStore>(dir.str() + "/shard0"));
    std::vector<double> warm = engine.evaluate(g, EvalSpec::ideal(2), points);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(warm[i]),
                  std::bit_cast<std::uint64_t>(cold[i]))
            << "point " << i;
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.evaluated, 0u);
    EXPECT_EQ(stats.store.warmHits, points.size());

    // And a memo-less engine with no store recomputes the same bits
    // (the store returned real values, not stale ones).
    EvalEngine bare;
    std::vector<double> direct =
        bare.evaluate(g, EvalSpec::ideal(2), points);
    for (std::size_t i = 0; i < warm.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(warm[i]),
                  std::bit_cast<std::uint64_t>(direct[i]));
}

TEST(ResultStore, UnwritableDirectoryDegradesToMemoryOnly)
{
    // A path under a regular FILE cannot be created.
    TempStoreDir dir;
    fs::create_directories(dir.str());
    std::ofstream(dir.str() + "/blocker").put('x');
    ResultStore store(dir.str() + "/blocker/sub");
    EXPECT_FALSE(store.persistent());
    // Still warms within the process.
    store.appendPoints("c:k", "spec", 1, {{bitsOf({1.0}), 0.5}});
    double value = 0.0;
    EXPECT_TRUE(store.lookupPoint("c:k", "spec", 1, bitsOf({1.0}), value));
    EXPECT_EQ(value, 0.5);
}

} // namespace
} // namespace redqaoa
