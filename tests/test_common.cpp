/**
 * @file
 * Common-utility tests: RNG determinism and distribution sanity,
 * descriptive statistics, dense linear algebra, and the polynomial /
 * n log n fits used by Figs 5 and 18.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/linalg.hpp"
#include "common/polyfit.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace redqaoa {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double lo = 1.0, hi = 0.0, sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, IndexStaysInRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.index(17), 17u);
}

TEST(Rng, IndexCoversRange)
{
    Rng r(10);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 1000; ++i)
        ++seen[r.index(5)];
    for (int c : seen)
        EXPECT_GT(c, 100);
}

TEST(Rng, NormalMoments)
{
    Rng r(11);
    const int n = 40000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = r.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(12);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(13);
    Rng c1 = parent.split();
    Rng c2 = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += c1.next() == c2.next();
    EXPECT_LT(same, 4);
}

TEST(Stats, MeanVariance)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 3.0);
    EXPECT_DOUBLE_EQ(stats::variance(xs), 2.0);
    EXPECT_DOUBLE_EQ(stats::stddev(xs), std::sqrt(2.0));
}

TEST(Stats, EmptyInputsAreSafe)
{
    std::vector<double> xs;
    EXPECT_DOUBLE_EQ(stats::mean(xs), 0.0);
    EXPECT_DOUBLE_EQ(stats::variance(xs), 0.0);
}

TEST(Stats, QuantilesAndMedian)
{
    std::vector<double> xs{4, 1, 3, 2};
    EXPECT_DOUBLE_EQ(stats::median(xs), 2.5);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 4.0);
}

TEST(Stats, BoxSummaryOrdering)
{
    std::vector<double> xs;
    Rng r(14);
    for (int i = 0; i < 200; ++i)
        xs.push_back(r.normal(5.0, 2.0));
    auto box = stats::boxSummary(xs);
    EXPECT_LE(box.whiskerLow, box.q1);
    EXPECT_LE(box.q1, box.median);
    EXPECT_LE(box.median, box.q3);
    EXPECT_LE(box.q3, box.whiskerHigh);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys{2, 4, 6, 8};
    EXPECT_NEAR(stats::pearson(xs, ys), 1.0, 1e-12);
    std::vector<double> neg{8, 6, 4, 2};
    EXPECT_NEAR(stats::pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantInputIsZero)
{
    std::vector<double> xs{1, 1, 1};
    std::vector<double> ys{2, 5, 9};
    EXPECT_DOUBLE_EQ(stats::pearson(xs, ys), 0.0);
}

TEST(Stats, HistogramFrequenciesSumToOne)
{
    Rng r(15);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(r.uniform());
    auto h = stats::histogram(xs, 10);
    double total = 0.0;
    for (std::size_t b = 0; b < h.counts.size(); ++b)
        total += h.frequency(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Linalg, IdentitySolve)
{
    Matrix eye = Matrix::identity(3);
    std::vector<double> b{1, 2, 3};
    auto x = solveLinearSystem(eye, b);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Linalg, GeneralSolve)
{
    Matrix a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    auto x = solveLinearSystem(a, {5, 10});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, SingularThrows)
{
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_THROW(solveLinearSystem(a, {1, 2}), std::runtime_error);
}

TEST(Linalg, PivotingHandlesZeroDiagonal)
{
    Matrix a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    auto x = solveLinearSystem(a, {3, 7});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, MatmulAndTranspose)
{
    Matrix a(2, 3);
    int v = 1;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a(r, c) = v++;
    Matrix ata = a.transposed() * a;
    EXPECT_EQ(ata.rows(), 3u);
    EXPECT_EQ(ata.cols(), 3u);
    EXPECT_DOUBLE_EQ(ata(0, 0), 1 * 1 + 4 * 4);
    EXPECT_DOUBLE_EQ(ata(2, 1), 3 * 2 + 6 * 5);
}

TEST(Linalg, LeastSquaresRecoversLine)
{
    // y = 3x + 1 with exact data.
    Matrix design(4, 2);
    std::vector<double> ys;
    for (int i = 0; i < 4; ++i) {
        design(static_cast<std::size_t>(i), 0) = i;
        design(static_cast<std::size_t>(i), 1) = 1.0;
        ys.push_back(3.0 * i + 1.0);
    }
    auto sol = solveLeastSquares(design, ys);
    EXPECT_NEAR(sol[0], 3.0, 1e-9);
    EXPECT_NEAR(sol[1], 1.0, 1e-9);
}

TEST(Polyfit, ExactQuadratic)
{
    std::vector<double> xs{-2, -1, 0, 1, 2, 3};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.0 * x * x - x + 0.5);
    Polynomial p = polyfit(xs, ys, 2);
    EXPECT_NEAR(p.coeffs[0], 0.5, 1e-8);
    EXPECT_NEAR(p.coeffs[1], -1.0, 1e-8);
    EXPECT_NEAR(p.coeffs[2], 2.0, 1e-8);
    EXPECT_NEAR(rSquared(p, xs, ys), 1.0, 1e-10);
}

TEST(Polyfit, Degree6FitRuns)
{
    // The Fig 5 configuration: degree-6 fit through noisy data.
    Rng r(16);
    std::vector<double> xs, ys;
    for (int i = 0; i < 60; ++i) {
        double x = r.uniform(0.2, 1.0);
        xs.push_back(x);
        ys.push_back(0.25 * std::pow(1.0 - x, 3) + 0.01 * r.normal());
    }
    Polynomial p = polyfit(xs, ys, 6);
    EXPECT_EQ(p.degree(), 6);
    EXPECT_GT(rSquared(p, xs, ys), 0.5);
}

TEST(Polyfit, NLogNFitRecoversCoefficients)
{
    std::vector<double> xs, ys;
    for (double x : {10.0, 50.0, 100.0, 400.0, 1000.0}) {
        xs.push_back(x);
        ys.push_back(2.5e-5 * x * std::log2(x) + 0.003);
    }
    auto [a, b] = fitNLogN(xs, ys);
    EXPECT_NEAR(a, 2.5e-5, 1e-8);
    EXPECT_NEAR(b, 0.003, 1e-6);
}

TEST(Polynomial, HornerEvaluation)
{
    Polynomial p;
    p.coeffs = {1.0, 0.0, 2.0}; // 1 + 2x^2.
    EXPECT_DOUBLE_EQ(p(3.0), 19.0);
    EXPECT_DOUBLE_EQ(p(0.0), 1.0);
}

} // namespace
} // namespace redqaoa
