/**
 * @file
 * Red-QAOA core tests: Algorithm 1's annealer (connectivity, size,
 * objective quality, cooling schedules), the dynamic binary-search
 * reducer (AND-ratio threshold honored), and the transfer donors.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/red_qaoa.hpp"
#include "core/sa_reducer.hpp"
#include "core/transfer.hpp"
#include "graph/generators.hpp"

namespace redqaoa {
namespace {

TEST(SaReducer, ProducesConnectedSubgraphOfRequestedSize)
{
    Rng rng(1);
    Graph g = gen::connectedGnp(14, 0.3, rng);
    SaReducer annealer;
    for (int k : {4, 7, 10, 14}) {
        SaResult res = annealer.reduce(g, k, rng);
        EXPECT_EQ(res.subgraph.graph.numNodes(), k);
        EXPECT_TRUE(res.subgraph.graph.isConnected());
    }
}

TEST(SaReducer, ObjectiveMatchesAndGap)
{
    Rng rng(2);
    Graph g = gen::connectedGnp(12, 0.4, rng);
    SaReducer annealer;
    SaResult res = annealer.reduce(g, 8, rng);
    EXPECT_NEAR(res.objective,
                std::fabs(res.subgraph.graph.averageDegree() -
                          g.averageDegree()),
                1e-12);
}

TEST(SaReducer, BeatsRandomSubgraphsOnAverage)
{
    // The annealer's whole job: its AND gap should be well below the
    // mean gap of random connected subgraphs of the same size.
    Rng rng(3);
    Graph g = gen::connectedGnp(15, 0.35, rng);
    const int k = 9;
    SaReducer annealer;
    double sa_gap = annealer.reduce(g, k, rng).objective;

    double random_gap = 0.0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        Subgraph s = randomConnectedSubgraph(g, k, rng);
        random_gap +=
            std::fabs(s.graph.averageDegree() - g.averageDegree());
    }
    random_gap /= trials;
    EXPECT_LE(sa_gap, random_gap + 1e-9);
}

TEST(SaReducer, AdaptiveCoolingTerminatesFaster)
{
    Rng rng1(4), rng2(4);
    Graph g = gen::connectedGnp(14, 0.35, rng1);
    Rng graph_sync(4);
    (void)gen::connectedGnp(14, 0.35, rng2); // Keep streams aligned.

    SaOptions constant;
    constant.adaptive = false;
    SaOptions adaptive = constant;
    adaptive.adaptive = true;

    SaResult res_const = SaReducer(constant).reduce(g, 8, rng1);
    SaResult res_adapt = SaReducer(adaptive).reduce(g, 8, rng2);
    EXPECT_LE(res_adapt.steps, res_const.steps);
    EXPECT_GT(res_adapt.steps, 0);
}

TEST(SaReducer, FullSizeRequestReturnsWholeGraph)
{
    Rng rng(5);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    SaReducer annealer;
    SaResult res = annealer.reduce(g, 9, rng);
    EXPECT_EQ(res.subgraph.graph.numNodes(), 9);
    EXPECT_EQ(res.subgraph.graph.numEdges(), g.numEdges());
    EXPECT_NEAR(res.objective, 0.0, 1e-12);
}

TEST(SaReducer, MoveCountersAreConsistent)
{
    Rng rng(6);
    Graph g = gen::connectedGnp(12, 0.4, rng);
    SaOptions opts;
    opts.movesPerTemperature = 2;
    SaReducer annealer(opts);
    SaResult res = annealer.reduce(g, 7, rng);
    EXPECT_EQ(res.accepted + res.rejected,
              res.steps * opts.movesPerTemperature);
}

TEST(RedQaoaReducer, ThresholdHonored)
{
    Rng rng(7);
    RedQaoaReducer reducer;
    for (int t = 0; t < 6; ++t) {
        Graph g = gen::connectedGnp(12, 0.4, rng);
        ReductionResult res = reducer.reduce(g, rng);
        EXPECT_GE(res.andRatio,
                  reducer.options().andRatioThreshold - 1e-9);
        EXPECT_TRUE(res.reduced.graph.isConnected());
    }
}

TEST(RedQaoaReducer, ActuallyReduces)
{
    Rng rng(8);
    int reduced_count = 0;
    RedQaoaReducer reducer;
    for (int t = 0; t < 8; ++t) {
        Graph g = gen::connectedGnp(12, 0.45, rng);
        ReductionResult res = reducer.reduce(g, rng);
        if (res.nodeReduction > 0.0)
            ++reduced_count;
        EXPECT_GE(res.nodeReduction, 0.0);
        EXPECT_LE(res.nodeReduction, 1.0);
    }
    // Dense-ish random graphs should essentially always shrink.
    EXPECT_GE(reduced_count, 6);
}

TEST(RedQaoaReducer, EdgeReductionExceedsNodeReduction)
{
    // Removing nodes removes at least their incident edges, so the edge
    // ratio should typically exceed the node ratio (the 28% vs 37%
    // pattern of Fig 13).
    Rng rng(9);
    RedQaoaReducer reducer;
    double node_total = 0.0, edge_total = 0.0;
    int n_reduced = 0;
    for (int t = 0; t < 10; ++t) {
        Graph g = gen::connectedGnp(12, 0.4, rng);
        ReductionResult res = reducer.reduce(g, rng);
        if (res.nodeReduction > 0) {
            node_total += res.nodeReduction;
            edge_total += res.edgeReduction;
            ++n_reduced;
        }
    }
    ASSERT_GT(n_reduced, 0);
    EXPECT_GE(edge_total, node_total);
}

TEST(RedQaoaReducer, FixedSizeMode)
{
    Rng rng(10);
    Graph g = gen::connectedGnp(12, 0.4, rng);
    RedQaoaReducer reducer;
    ReductionResult res = reducer.reduceToSize(g, 6, rng);
    EXPECT_EQ(res.reduced.graph.numNodes(), 6);
    EXPECT_NEAR(res.nodeReduction, 0.5, 1e-12);
}

TEST(RedQaoaReducer, BinarySearchIsLogarithmic)
{
    Rng rng(11);
    Graph g = gen::connectedGnp(40, 0.15, rng);
    RedQaoaReducer reducer;
    ReductionResult res = reducer.reduce(g, rng);
    // Binary search over [n/2, n] midpoints (<= ceil(log2 20) = 5)
    // plus the 3 post-selection anneals at the accepted size.
    EXPECT_LE(res.annealerRuns, 9);
    EXPECT_GE(res.annealerRuns, 1);
}

TEST(RedQaoaReducer, TinyGraphsPassThrough)
{
    Rng rng(12);
    Graph g(2, {{0, 1}});
    RedQaoaReducer reducer;
    ReductionResult res = reducer.reduce(g, rng);
    EXPECT_EQ(res.reduced.graph.numNodes(), 2);
    EXPECT_DOUBLE_EQ(res.andRatio, 1.0);
}

TEST(TransferDonor, RegularWithFeasibleDegree)
{
    Rng rng(13);
    Graph donor = transferDonor(8, 3.0, rng);
    EXPECT_EQ(donor.numNodes(), 8);
    for (Node v = 0; v < 8; ++v)
        EXPECT_EQ(donor.degree(v), 3);
}

TEST(TransferDonor, OddProductsGetAdjusted)
{
    Rng rng(14);
    // 7 nodes, degree 3 -> 21 odd: must adjust to an even product.
    Graph donor = transferDonor(7, 3.0, rng);
    EXPECT_EQ(donor.numNodes(), 7);
    int d = donor.degree(0);
    for (Node v = 1; v < 7; ++v)
        EXPECT_EQ(donor.degree(v), d);
    EXPECT_EQ((7 * d) % 2, 0);
}

TEST(TransferDonor, DegreeCappedByNodes)
{
    Rng rng(15);
    Graph donor = transferDonor(4, 9.0, rng);
    EXPECT_EQ(donor.numNodes(), 4);
    EXPECT_EQ(donor.degree(0), 3); // K4.
}

} // namespace
} // namespace redqaoa
