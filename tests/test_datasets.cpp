/**
 * @file
 * Synthetic benchmark datasets must match the published Table 1 /
 * §6.2-§6.3 / §7.1 statistics they were built to reproduce: counts,
 * node ranges, density regimes, and the regular-graph fractions.
 */

#include <gtest/gtest.h>

#include "graph/datasets.hpp"

namespace redqaoa {
namespace {

TEST(Datasets, AidsTable1Stats)
{
    Dataset d = datasets::makeAids();
    EXPECT_EQ(d.graphs.size(), 700u);
    EXPECT_GE(d.minNodes(), 2);
    EXPECT_LE(d.maxNodes(), 10);
    EXPECT_NEAR(d.meanNodes(), 8.0, 1.0);
    // Valence cap: molecules have max degree <= 4.
    for (const Graph &g : d.graphs)
        EXPECT_LE(g.maxDegree(), 4);
}

TEST(Datasets, AidsIsSparse)
{
    Dataset d = datasets::makeAids();
    EXPECT_LT(d.meanAverageDegree(), 3.0);
    // Essentially no regular molecule graphs (paper: 1.14%).
    EXPECT_LT(d.regularFraction(), 0.08);
}

TEST(Datasets, LinuxTable1Stats)
{
    Dataset d = datasets::makeLinux();
    EXPECT_EQ(d.graphs.size(), 1000u);
    EXPECT_GE(d.minNodes(), 4);
    EXPECT_LE(d.maxNodes(), 10);
    EXPECT_LT(d.meanAverageDegree(), 3.0);
    // Paper §7.1: 0% of LINUX graphs are regular.
    EXPECT_LT(d.regularFraction(), 0.05);
}

TEST(Datasets, ImdbTable1Stats)
{
    Dataset d = datasets::makeImdb();
    EXPECT_EQ(d.graphs.size(), 1500u);
    EXPECT_GE(d.minNodes(), 7);
    EXPECT_LE(d.maxNodes(), 89);
    // Dense ego networks: much higher AND than AIDS/Linux.
    EXPECT_GT(d.meanAverageDegree(), 5.0);
    // Paper §7.1: about 54% of IMDb graphs are regular.
    EXPECT_NEAR(d.regularFraction(), 0.54, 0.08);
}

TEST(Datasets, ImdbSizeDistributionHasTail)
{
    Dataset d = datasets::makeImdb();
    auto small = d.filterByNodes(0, 10);
    auto medium = d.filterByNodes(11, 20);
    auto large = d.filterByNodes(21, 89);
    EXPECT_GT(small.size(), medium.size());
    EXPECT_GT(medium.size(), large.size());
    EXPECT_GT(large.size(), 0u);
}

TEST(Datasets, RandomDatasetRange)
{
    Dataset d = datasets::makeRandom();
    EXPECT_EQ(d.graphs.size(), 10u);
    EXPECT_EQ(d.minNodes(), 7);
    EXPECT_EQ(d.maxNodes(), 20);
    for (const Graph &g : d.graphs)
        EXPECT_TRUE(g.isConnected());
}

TEST(Datasets, DeterministicBySeed)
{
    Dataset a = datasets::makeAids(123, 30);
    Dataset b = datasets::makeAids(123, 30);
    ASSERT_EQ(a.graphs.size(), b.graphs.size());
    for (std::size_t i = 0; i < a.graphs.size(); ++i) {
        EXPECT_EQ(a.graphs[i].numNodes(), b.graphs[i].numNodes());
        EXPECT_EQ(a.graphs[i].numEdges(), b.graphs[i].numEdges());
    }
    Dataset c = datasets::makeAids(124, 30);
    bool all_same = true;
    for (std::size_t i = 0; i < a.graphs.size(); ++i)
        if (a.graphs[i].numEdges() != c.graphs[i].numEdges())
            all_same = false;
    EXPECT_FALSE(all_same);
}

TEST(Datasets, FilterByNodesBounds)
{
    Dataset d = datasets::makeLinux(7002, 100);
    auto f = d.filterByNodes(6, 8);
    for (const Graph &g : f) {
        EXPECT_GE(g.numNodes(), 6);
        EXPECT_LE(g.numNodes(), 8);
    }
}

TEST(Datasets, AllGraphsConnected)
{
    // QAOA circuits need connected instances; every synthetic dataset
    // generator must produce connected graphs.
    for (const Dataset &d :
         {datasets::makeAids(1, 60), datasets::makeLinux(2, 60),
          datasets::makeImdb(3, 60), datasets::makeRandom(4, 10)}) {
        for (const Graph &g : d.graphs)
            EXPECT_TRUE(g.isConnected()) << d.name;
    }
}

} // namespace
} // namespace redqaoa
