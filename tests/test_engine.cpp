/**
 * @file
 * EvalEngine / backend-registry / PipelineFleet tests. The load-bearing
 * contracts:
 *  - engine-routed evaluation is bit-identical to direct evaluator
 *    construction at 1 thread, for every backend family;
 *  - results are invariant across thread counts >= 2 (and equal to the
 *    1-thread values);
 *  - the artifact cache hands every evaluator of the same graph the
 *    same shared tables;
 *  - duplicate (graph, spec, params) points are served from the memo
 *    with exactly the values a fresh computation produces;
 *  - a >= 100-job PipelineFleet on one engine produces an identical
 *    JSON report across repeats and thread counts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "engine/backend_registry.hpp"
#include "engine/engine_shard_set.hpp"
#include "engine/eval_engine.hpp"
#include "engine/fleet.hpp"
#include "graph/generators.hpp"
#include "landscape/landscape.hpp"

namespace redqaoa {
namespace {

/** Restore the default global pool when a test returns. */
class PoolGuard
{
  public:
    ~PoolGuard() { ThreadPool::setGlobalThreads(ThreadPool::defaultThreads()); }
};

Graph
smallGraph(std::uint64_t seed = 5)
{
    Rng rng(seed);
    return gen::connectedGnp(9, 0.4, rng);
}

Graph
largeGraph(std::uint64_t seed = 6)
{
    Rng rng(seed);
    return gen::connectedGnp(24, 0.15, rng);
}

TEST(BackendRegistry, AutoPolicyMatchesHistoricalSelection)
{
    Graph small = smallGraph();
    Graph large = largeGraph();

    EXPECT_EQ(makeEvaluator(small, EvalSpec::ideal(2))->describe(),
              "statevector");
    EXPECT_EQ(makeEvaluator(large, EvalSpec::ideal(1))->describe(),
              "analytic-p1");
    EXPECT_EQ(makeEvaluator(large, EvalSpec::ideal(2))->describe(),
              "lightcone");
    // The cutoff is part of the spec, not a global.
    EXPECT_EQ(makeEvaluator(large, EvalSpec::ideal(2, 26))->describe(),
              "statevector");
    // Non-ideal noise resolves an Auto spec to the trajectory backend.
    EvalSpec auto_noisy;
    auto_noisy.noise = noise::ibmKolkata();
    EXPECT_EQ(makeEvaluator(small, auto_noisy)->describe(),
              "noisy:ibmq_kolkata");
    // EvalSpec::noisy PINS Trajectory, so pipelines keep trajectory
    // averaging and shot sampling even under an ideal noise model (the
    // historical makeNoisyEvaluator contract).
    EXPECT_EQ(makeEvaluator(small, EvalSpec::noisy(noise::ibmKolkata()))
                  ->describe(),
              "noisy:ibmq_kolkata");
    EXPECT_EQ(makeEvaluator(small, EvalSpec::noisy(noise::ideal()))
                  ->describe(),
              "noisy:ideal");
    // And the historical helper is a thin wrapper over the same policy.
    EXPECT_EQ(makeIdealEvaluator(large, 2)->describe(),
              makeEvaluator(large, EvalSpec::ideal(2))->describe());
}

TEST(BackendRegistry, DuplicateRegistrationThrows)
{
    EXPECT_THROW(BackendRegistry::instance().add(
                     EvalBackend::Statevector,
                     [](const Graph &, const EvalSpec &, ArtifactCache *)
                         -> std::unique_ptr<CutEvaluator> {
                         return nullptr;
                     }),
                 std::invalid_argument);
    EXPECT_THROW(BackendRegistry::instance().add(
                     EvalBackend::Auto,
                     [](const Graph &, const EvalSpec &, ArtifactCache *)
                         -> std::unique_ptr<CutEvaluator> {
                         return nullptr;
                     }),
                 std::invalid_argument);
}

TEST(BackendRegistry, PointAwareResolutionPromotesMultiPointJobs)
{
    Graph small = smallGraph();
    Graph large = largeGraph();
    std::vector<QaoaParams> pts; // Only the count matters here.

    // Auto specs that resolve to the statevector backend promote to
    // the batched sweep at kBatchedPointsThreshold points, not before.
    EXPECT_EQ(resolveBackend(EvalSpec::ideal(2), small,
                             kBatchedPointsThreshold - 1),
              EvalBackend::Statevector);
    EXPECT_EQ(resolveBackend(EvalSpec::ideal(2), small,
                             kBatchedPointsThreshold),
              EvalBackend::StatevectorBatched);
    EXPECT_EQ(resolveBackend(EvalSpec::ideal(2), small, 100),
              EvalBackend::StatevectorBatched);

    // Non-statevector resolutions never promote, whatever the count.
    EXPECT_EQ(resolveBackend(EvalSpec::ideal(1), large, 100),
              EvalBackend::AnalyticP1);
    EXPECT_EQ(resolveBackend(EvalSpec::ideal(2), large, 100),
              EvalBackend::Lightcone);

    // A pinned backend is a caller decision; the point count cannot
    // override it.
    EvalSpec pinned = EvalSpec::ideal(2);
    pinned.backend = EvalBackend::Statevector;
    EXPECT_EQ(resolveBackend(pinned, small, 100),
              EvalBackend::Statevector);

    // The pinned batched backend constructs and labels itself.
    EvalSpec batched_spec = EvalSpec::ideal(2);
    batched_spec.backend = EvalBackend::StatevectorBatched;
    EXPECT_EQ(makeEvaluator(small, batched_spec)->describe(),
              "statevector_batched");
    EXPECT_EQ(backendName(EvalBackend::StatevectorBatched),
              std::string("statevector_batched"));
}

TEST(EvalEngine, BatchedJobsBitIdenticalToDirectEvaluator)
{
    // Multi-point statevector jobs route through the batched sweep in
    // drain(); values must stay bit-identical to a direct per-point
    // evaluator at 1 thread AND across pools, memo included.
    PoolGuard guard;
    Graph g = smallGraph();
    Rng prng(88);
    auto pts = randomParameterSets(2, 12, prng);
    ASSERT_GE(pts.size(), kBatchedPointsThreshold);

    ExactEvaluator direct(g);
    std::vector<std::vector<double>> runs;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        EvalEngine engine;
        auto got = engine.evaluate(g, EvalSpec::ideal(2), pts);
        for (std::size_t i = 0; i < pts.size(); ++i)
            EXPECT_EQ(got[i], direct.expectation(pts[i]))
                << "threads=" << threads << " i=" << i;
        // The batched path feeds the same memo: duplicates are served
        // with identical values and no recomputation.
        auto again = engine.evaluate(g, EvalSpec::ideal(2), pts);
        EXPECT_EQ(got, again);
        EXPECT_EQ(engine.stats().memoHits, pts.size());
        EXPECT_EQ(engine.stats().evaluated, pts.size());
        runs.push_back(std::move(got));
    }
    for (std::size_t r = 1; r < runs.size(); ++r)
        EXPECT_EQ(runs[0], runs[r]) << "run " << r;
}

TEST(EvalEngine, BitIdenticalToDirectAtOneThread)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(1);
    Graph small = smallGraph();
    Graph large = largeGraph();
    Rng prng(33);
    auto p1 = randomParameterSets(1, 12, prng);
    auto p2 = randomParameterSets(2, 12, prng);

    // Statevector.
    {
        ExactEvaluator direct(small);
        auto got = EvalEngine().evaluate(small, EvalSpec::ideal(2), p2);
        for (std::size_t i = 0; i < p2.size(); ++i)
            EXPECT_EQ(got[i], direct.expectation(p2[i])) << "i=" << i;
    }
    // Analytic p=1.
    {
        AnalyticEvaluator direct(large);
        auto got = EvalEngine().evaluate(large, EvalSpec::ideal(1), p1);
        for (std::size_t i = 0; i < p1.size(); ++i)
            EXPECT_EQ(got[i], direct.expectation(p1[i])) << "i=" << i;
    }
    // Lightcone.
    {
        LightconeCutEvaluator direct(large, 2, 16);
        auto got = EvalEngine().evaluate(large, EvalSpec::ideal(2), p2);
        for (std::size_t i = 0; i < p2.size(); ++i)
            EXPECT_EQ(got[i], direct.expectation(p2[i])) << "i=" << i;
    }
    // Trajectory, exact and sampled readout.
    for (int shots : {0, 256}) {
        NoisyEvaluator direct(small, noise::ibmKolkata(), 6, 77, shots);
        auto spec = EvalSpec::noisy(noise::ibmKolkata(), 1, 6, 77, shots);
        auto got = EvalEngine().evaluate(small, spec, p1);
        auto want = direct.batchExpectation(p1);
        EXPECT_EQ(got, want) << "shots=" << shots;
    }
}

TEST(EvalEngine, ThreadCountInvariance)
{
    PoolGuard guard;
    Graph small = smallGraph();
    Graph large = largeGraph();
    Rng prng(44);
    auto p2 = randomParameterSets(2, 16, prng);
    auto noisy_spec = EvalSpec::noisy(noise::ibmCairo(), 2, 4, 9, 128);

    // Small-state backends (below the intra-state parallel threshold)
    // are bitwise identical at EVERY thread count, 1 included.
    std::vector<std::vector<double>> ideal_runs, noisy_runs;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        EvalEngine engine;
        ideal_runs.push_back(
            engine.evaluate(small, EvalSpec::ideal(2), p2));
        noisy_runs.push_back(engine.evaluate(small, noisy_spec, p2));
    }
    for (std::size_t r = 1; r < ideal_runs.size(); ++r) {
        EXPECT_EQ(ideal_runs[0], ideal_runs[r]) << "run " << r;
        EXPECT_EQ(noisy_runs[0], noisy_runs[r]) << "run " << r;
    }

    // Cone states here cross the intra-state parallel threshold, where
    // the repo's kernel contract is invariance across thread counts
    // >= 2 (the 1-thread pool is the bit-identical serial reference,
    // pinned against direct evaluation in BitIdenticalToDirect).
    std::vector<std::vector<double>> cone_runs;
    for (int threads : {2, 4, 8}) {
        ThreadPool::setGlobalThreads(threads);
        EvalEngine engine;
        cone_runs.push_back(
            engine.evaluate(large, EvalSpec::ideal(2), p2));
    }
    for (std::size_t r = 1; r < cone_runs.size(); ++r)
        EXPECT_EQ(cone_runs[0], cone_runs[r]) << "run " << r;
}

TEST(EvalEngine, ArtifactCacheSharesTablesAcrossEvaluators)
{
    EvalEngine engine;
    Graph g = smallGraph();
    Graph big = largeGraph();

    // Same (graph, spec) -> the same shared evaluator instance.
    auto a = engine.evaluator(g, EvalSpec::ideal(1));
    auto b = engine.evaluator(g, EvalSpec::ideal(1));
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(engine.stats().evaluatorHits, 1u);

    // A structurally equal copy of the graph hits the same entry.
    Graph copy = g;
    auto c = engine.evaluator(copy, EvalSpec::ideal(1));
    EXPECT_EQ(a.get(), c.get());

    // Statevector evaluators of one graph share one cut table, across
    // distinct specs that resolve to the same backend.
    auto any_depth = engine.evaluator(g, EvalSpec::ideal(3));
    auto *ea = dynamic_cast<ExactEvaluator *>(a.get());
    auto *ed = dynamic_cast<ExactEvaluator *>(any_depth.get());
    ASSERT_NE(ea, nullptr);
    ASSERT_NE(ed, nullptr);
    EXPECT_EQ(ea->simulator().sharedTable().get(),
              ed->simulator().sharedTable().get());
    EXPECT_EQ(ea->simulator().sharedTable().get(),
              engine.artifacts().cutTable(g).get());

    // Lightcone decompositions are shared per (p, cone cap).
    auto l1 = engine.evaluator(big, EvalSpec::ideal(2));
    auto l2 = engine.evaluator(big, EvalSpec::ideal(2));
    auto *c1 = dynamic_cast<LightconeCutEvaluator *>(l1.get());
    auto *c2 = dynamic_cast<LightconeCutEvaluator *>(l2.get());
    ASSERT_NE(c1, nullptr);
    ASSERT_NE(c2, nullptr);
    EXPECT_EQ(c1->shared().get(), c2->shared().get());

    ArtifactCache::Stats stats = engine.artifacts().stats();
    EXPECT_EQ(stats.graphs, 2u);
    EXPECT_GE(stats.hits, 1u);
}

TEST(EvalEngine, MemoServesDuplicatePointsWithIdenticalValues)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(2);
    Graph g = smallGraph();
    Rng prng(55);
    auto base = randomParameterSets(1, 10, prng);

    // A batch with intra-job duplicates.
    std::vector<QaoaParams> with_dups = base;
    with_dups.insert(with_dups.end(), base.begin(), base.begin() + 5);

    EvalEngine engine;
    auto first = engine.evaluate(g, EvalSpec::ideal(1), with_dups);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(first[base.size() + i], first[i]);
    EngineStats after_first = engine.stats();
    EXPECT_EQ(after_first.points, with_dups.size());
    EXPECT_EQ(after_first.evaluated, base.size());
    EXPECT_EQ(after_first.memoHits, 5u);

    // A second job repeating the base points: all memo hits, same
    // values, nothing recomputed.
    auto second = engine.evaluate(g, EvalSpec::ideal(1), base);
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_EQ(second[i], first[i]);
    EngineStats after_second = engine.stats();
    EXPECT_EQ(after_second.evaluated, base.size());
    EXPECT_EQ(after_second.memoHits, 5u + base.size());

    // Memoized values equal a fresh engine's computation.
    auto fresh = EvalEngine().evaluate(g, EvalSpec::ideal(1), base);
    EXPECT_EQ(second, fresh);
}

TEST(EvalEngine, TrajectoryJobsUseWholeBatchSemantics)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(2);
    Graph g = smallGraph();
    Rng prng(66);
    auto params = randomParameterSets(1, 8, prng);
    auto spec = EvalSpec::noisy(noise::ibmToronto(), 1, 5, 13, 64);

    EvalEngine engine;
    auto first = engine.evaluate(g, spec, params);
    // Resubmitting the identical batch is served from the batch memo.
    auto again = engine.evaluate(g, spec, params);
    EXPECT_EQ(first, again);
    EXPECT_EQ(engine.stats().memoHits, params.size());
    // And matches a fresh direct evaluator, which is what any single
    // job is bit-identical to.
    NoisyEvaluator direct(g, noise::ibmToronto(), 5, 13, 64);
    EXPECT_EQ(first, direct.batchExpectation(params));
}

TEST(EvalEngine, CrossJobShardingRunsAllPendingJobsOnDrain)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(4);
    Graph a = smallGraph(7);
    Graph b = smallGraph(8);
    Rng prng(77);
    auto pa = randomParameterSets(1, 6, prng);
    auto pb = randomParameterSets(2, 6, prng);

    EvalEngine engine;
    EvalJobTicket ta = engine.submit(a, EvalSpec::ideal(1), pa);
    EvalJobTicket tb = engine.submit(b, EvalSpec::ideal(2), pb);
    EXPECT_FALSE(ta.ready());
    EXPECT_FALSE(tb.ready());
    // Getting one ticket drains the whole queue (one shared fan-out).
    const auto &va = ta.get();
    EXPECT_TRUE(tb.ready());
    EXPECT_EQ(va.size(), pa.size());
    EXPECT_EQ(tb.get().size(), pb.size());

    ExactEvaluator da(a), db(b);
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_EQ(va[i], da.expectation(pa[i]));
    for (std::size_t i = 0; i < pb.size(); ++i)
        EXPECT_EQ(tb.get()[i], db.expectation(pb[i]));
}

TEST(EvalEngine, ObjectiveMatchesEvaluator)
{
    EvalEngine engine;
    Graph g = smallGraph();
    Objective obj = engine.objective(g, EvalSpec::ideal(1));
    auto ev = engine.evaluator(g, EvalSpec::ideal(1));
    QaoaParams p({0.7}, {0.3});
    EXPECT_EQ(obj(p.flatten()), -ev->expectation(p));
}

TEST(EvalEngine, EngineLandscapeMatchesDirectLandscape)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(2);
    Graph g = smallGraph();
    ExactEvaluator direct(g);
    Landscape want = Landscape::evaluate(direct, 12);
    EvalEngine engine;
    Landscape got =
        Landscape::evaluate(engine, g, EvalSpec::ideal(1), 12);
    EXPECT_EQ(got.values(), want.values());
}

/** >= 100 tiny pipeline runs on one engine; tiny budgets keep it fast. */
std::vector<FleetScenario>
fleetScenarios()
{
    std::vector<std::pair<std::string, Graph>> graphs;
    Rng rng(313);
    for (int i = 0; i < 13; ++i) {
        char name[16];
        std::snprintf(name, sizeof name, "g%d", i);
        graphs.emplace_back(name, gen::connectedGnp(8, 0.4, rng));
    }
    PipelineOptions base;
    base.restarts = 1;
    base.searchEvaluations = 6;
    base.refineEvaluations = 3;
    base.trajectories = 2;
    return PipelineFleet::grid(
        graphs, {noise::ibmKolkata(), noise::scaled(2.0)}, {1, 2}, base,
        /*seed0=*/41, /*include_baseline=*/true);
}

TEST(PipelineFleet, HundredConcurrentJobsDeterministicReport)
{
    PoolGuard guard;
    auto scenarios = fleetScenarios();
    ASSERT_GE(scenarios.size(), 100u);

    std::vector<std::string> dumps;
    std::vector<FleetReport> reports;
    // Two runs at 8 threads (repeatability) and one each at 2 and 1
    // (thread-count invariance, incl. the serial reference).
    for (int threads : {8, 8, 2, 1}) {
        ThreadPool::setGlobalThreads(threads);
        PipelineFleet fleet;
        FleetReport report = fleet.run(scenarios);
        EXPECT_EQ(report.runs.size(), scenarios.size());
        dumps.push_back(report.runsJson().dump(1));
        reports.push_back(std::move(report));
    }
    for (std::size_t r = 1; r < dumps.size(); ++r)
        EXPECT_EQ(dumps[0], dumps[r]) << "run " << r;

    // The full report document round-trips and carries the schema tag
    // plus engine traffic.
    json::Value doc = json::Value::parse(reports[0].toJson().dump(2));
    EXPECT_EQ(doc.find("schema_version")->asNumber(), 1);
    EXPECT_EQ(doc.find("tool")->asString(), "redqaoa_fleet");
    const json::Value *meta = doc.find("metadata");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("scenario_count")->asNumber(),
              static_cast<double>(scenarios.size()));
    const json::Value *eng = meta->find("engine");
    ASSERT_NE(eng, nullptr);
    // One engine served every run: the shared scoring evaluators must
    // have produced cache traffic.
    EXPECT_GT(eng->find("evaluator_hits")->asNumber(), 0.0);
    EXPECT_EQ(doc.find("runs")->size(), scenarios.size());

    // Sanity on the rows themselves.
    for (const FleetRunSummary &run : reports[0].runs) {
        EXPECT_GT(run.maxCut, 0) << run.name;
        EXPECT_GE(run.approxRatio, -1.0) << run.name;
        EXPECT_LE(run.approxRatio, 1.0 + 1e-9) << run.name;
    }
}

TEST(PipelineFleet, GridBuildsEveryCombination)
{
    PipelineOptions base;
    Rng rng(1);
    std::vector<std::pair<std::string, Graph>> graphs{
        {"a", gen::connectedGnp(6, 0.5, rng)},
        {"b", gen::connectedGnp(7, 0.5, rng)}};
    auto plain = PipelineFleet::grid(graphs, {noise::ibmKolkata()},
                                     {1, 2, 3}, base, 10, false);
    EXPECT_EQ(plain.size(), 6u);
    auto with_base = PipelineFleet::grid(graphs, {noise::ibmKolkata()},
                                         {1, 2, 3}, base, 10, true);
    EXPECT_EQ(with_base.size(), 12u);
    // Seeds are sequential and unique in row order.
    for (std::size_t i = 0; i < with_base.size(); ++i)
        EXPECT_EQ(with_base[i].seed, 10u + i);
    EXPECT_TRUE(with_base[1].baseline);
    EXPECT_EQ(with_base[1].name, "a/ibmq_kolkata/p1/baseline");
}

TEST(EngineShardSet, RoutingIsDeterministicAcrossRestarts)
{
    // Placement is a pure function of graph structure and shard count:
    // two independently constructed shard sets (a "restart") must
    // route every graph the same way.
    std::vector<Graph> graphs;
    for (std::uint64_t seed = 1; seed <= 24; ++seed)
        graphs.push_back(smallGraph(seed));

    EngineShardSet first(4);
    EngineShardSet second(4);
    ASSERT_EQ(first.shardCount(), 4);
    for (const Graph &g : graphs) {
        std::size_t shard = first.shardFor(g);
        EXPECT_LT(shard, 4u);
        EXPECT_EQ(shard, second.shardFor(g));
        // Repeated lookups of the same graph never move.
        EXPECT_EQ(shard, first.shardFor(g));
    }
}

TEST(EngineShardSet, NestedCongruenceWhenShardCountsDivideEvenly)
{
    // hash % 2 == (hash % 4) % 2: when one shard count divides the
    // other, a graph's 2-shard placement is derivable from its 4-shard
    // placement. Growing a deployment 2 -> 4 therefore splits each
    // shard's population in two instead of reshuffling everything.
    EngineShardSet two(2);
    EngineShardSet four(4);
    EngineShardSet eight(8);
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        Graph g = smallGraph(seed);
        EXPECT_EQ(four.shardFor(g) % 2, two.shardFor(g));
        EXPECT_EQ(eight.shardFor(g) % 4, four.shardFor(g));
        EXPECT_EQ(eight.shardFor(g) % 2, two.shardFor(g));
    }
}

TEST(EngineShardSet, AggregateStatsSumsShardCounters)
{
    EngineShardSet set(3);
    Graph g = smallGraph();
    Rng rng(11);
    std::vector<QaoaParams> points = randomParameterSets(1, 6, rng);

    // Evaluate on two different shards; the third stays idle.
    set.shard(0)->evaluate(g, EvalSpec::ideal(1), points);
    set.shard(1)->evaluate(g, EvalSpec::ideal(1), points);
    set.shard(1)->evaluate(g, EvalSpec::ideal(1), points); // memo hits

    EngineStats total = set.aggregateStats();
    std::vector<EngineStats> per = set.shardStats();
    ASSERT_EQ(per.size(), 3u);
    std::uint64_t points_sum = 0;
    std::uint64_t memo_sum = 0;
    std::uint64_t graphs_sum = 0;
    for (const EngineStats &s : per) {
        points_sum += s.points;
        memo_sum += s.memoHits;
        graphs_sum += s.artifacts.graphs;
    }
    EXPECT_EQ(total.points, points_sum);
    EXPECT_EQ(total.memoHits, memo_sum);
    EXPECT_EQ(total.artifacts.graphs, graphs_sum);
    EXPECT_EQ(total.points, 18u);
    EXPECT_EQ(total.memoHits, 6u);   // The repeated shard-1 batch.
    EXPECT_EQ(total.artifacts.graphs, 2u);
    EXPECT_EQ(per[2].points, 0u);    // The idle shard contributes zeros.
}

TEST(RedQaoaPipeline, SharedEngineMatchesPrivateEngine)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(2);
    Rng grng(91);
    Graph g = gen::connectedGnp(9, 0.4, grng);
    PipelineOptions opts;
    opts.restarts = 2;
    opts.searchEvaluations = 10;
    opts.refineEvaluations = 5;
    opts.trajectories = 3;
    opts.noise = noise::ibmKolkata();

    RedQaoaPipeline private_engine(opts);
    Rng r1(3);
    PipelineResult a = private_engine.run(g, r1);

    auto engine = std::make_shared<EvalEngine>();
    RedQaoaPipeline shared_engine(opts, engine);
    Rng r2(3);
    PipelineResult b = shared_engine.run(g, r2);
    // Warm engine: run again, results must not depend on cache state.
    Rng r3(3);
    PipelineResult c = shared_engine.run(g, r3);

    EXPECT_EQ(a.idealEnergy, b.idealEnergy);
    EXPECT_EQ(a.approxRatio, b.approxRatio);
    EXPECT_EQ(a.params.gamma, b.params.gamma);
    EXPECT_EQ(a.params.beta, b.params.beta);
    EXPECT_EQ(b.idealEnergy, c.idealEnergy);
    EXPECT_EQ(b.params.gamma, c.params.gamma);
}

} // namespace
} // namespace redqaoa
