/**
 * @file
 * Optimizer tests on standard benchmark functions plus QAOA-shaped
 * objectives: all three derivative-free methods must reach known optima,
 * honor evaluation budgets, and produce monotone best-so-far traces.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "opt/cobyla_lite.hpp"
#include "opt/grid_search.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/spsa.hpp"

namespace redqaoa {
namespace {

double
sphere(const std::vector<double> &x)
{
    double s = 0.0;
    for (double v : x)
        s += v * v;
    return s;
}

double
rosenbrock(const std::vector<double> &x)
{
    double s = 0.0;
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
        double a = x[i + 1] - x[i] * x[i];
        double b = 1.0 - x[i];
        s += 100.0 * a * a + b * b;
    }
    return s;
}

double
shiftedQuadratic(const std::vector<double> &x)
{
    double s = 0.0;
    std::vector<double> target{1.5, -0.7};
    for (std::size_t i = 0; i < x.size(); ++i) {
        double d = x[i] - target[i];
        s += (1.0 + static_cast<double>(i)) * d * d;
    }
    return s;
}

TEST(NelderMead, SolvesSphere)
{
    OptOptions opts;
    opts.maxEvaluations = 400;
    NelderMead nm(opts);
    auto res = nm.minimize(sphere, {2.0, -1.5, 0.7});
    EXPECT_LT(res.value, 1e-4);
}

TEST(NelderMead, SolvesShiftedQuadratic)
{
    OptOptions opts;
    opts.maxEvaluations = 300;
    NelderMead nm(opts);
    auto res = nm.minimize(shiftedQuadratic, {0.0, 0.0});
    EXPECT_NEAR(res.x[0], 1.5, 0.02);
    EXPECT_NEAR(res.x[1], -0.7, 0.02);
}

TEST(NelderMead, MakesProgressOnRosenbrock)
{
    OptOptions opts;
    opts.maxEvaluations = 800;
    NelderMead nm(opts);
    auto res = nm.minimize(rosenbrock, {-1.0, 1.0});
    EXPECT_LT(res.value, rosenbrock({-1.0, 1.0}) * 0.05);
}

TEST(CobylaLite, SolvesSphere)
{
    OptOptions opts;
    opts.maxEvaluations = 400;
    CobylaLite cob(opts);
    auto res = cob.minimize(sphere, {2.0, -1.5});
    EXPECT_LT(res.value, 1e-3);
}

TEST(CobylaLite, SolvesShiftedQuadratic)
{
    OptOptions opts;
    opts.maxEvaluations = 400;
    CobylaLite cob(opts);
    auto res = cob.minimize(shiftedQuadratic, {0.0, 0.0});
    EXPECT_NEAR(res.x[0], 1.5, 0.05);
    EXPECT_NEAR(res.x[1], -0.7, 0.05);
}

TEST(Spsa, ImprovesSphere)
{
    OptOptions opts;
    opts.maxEvaluations = 600;
    Spsa spsa(opts, 3);
    auto res = spsa.minimize(sphere, {1.0, -1.0});
    EXPECT_LT(res.value, 0.2);
}

TEST(AllOptimizers, RespectEvaluationBudget)
{
    OptOptions opts;
    opts.maxEvaluations = 50;
    for (const Optimizer *o :
         std::initializer_list<const Optimizer *>{
             new NelderMead(opts), new CobylaLite(opts),
             new Spsa(opts, 1)}) {
        auto res = o->minimize(sphere, {1.0, 1.0, 1.0});
        EXPECT_LE(res.evaluations, opts.maxEvaluations + 4) << o->name();
        EXPECT_EQ(res.trace.size(),
                  static_cast<std::size_t>(res.evaluations))
            << o->name();
        delete o;
    }
}

TEST(AllOptimizers, TraceIsMonotoneNonIncreasing)
{
    OptOptions opts;
    opts.maxEvaluations = 120;
    NelderMead nm(opts);
    auto res = nm.minimize(rosenbrock, {0.5, -0.5});
    for (std::size_t i = 1; i < res.trace.size(); ++i)
        EXPECT_LE(res.trace[i], res.trace[i - 1] + 1e-15);
}

TEST(MultiRestart, KeepsAllRunsAndFindsBest)
{
    OptOptions opts;
    opts.maxEvaluations = 80;
    NelderMead nm(opts);
    Rng rng(4);
    auto runs = multiRestart(
        nm, shiftedQuadratic, 6,
        [](Rng &r) {
            return std::vector<double>{r.uniform(-3, 3), r.uniform(-3, 3)};
        },
        rng);
    EXPECT_EQ(runs.size(), 6u);
    std::size_t best = bestRun(runs);
    for (const auto &r : runs)
        EXPECT_LE(runs[best].value, r.value);
    EXPECT_LT(runs[best].value, 0.05);
}

TEST(GridSearchP1, FindsSinusoidMinimum)
{
    // f = -sin(gamma) * sin(4 beta): grid should land near
    // gamma = pi/2, beta = pi/8 (the single-edge QAOA optimum).
    auto res = gridSearchP1(
        [](double g, double b) { return -std::sin(g) * std::sin(4 * b); },
        30);
    EXPECT_EQ(res.evaluations, 900);
    EXPECT_NEAR(res.bestX[0], M_PI / 2.0, 0.25);
    EXPECT_NEAR(res.bestX[1], M_PI / 8.0, 0.2);
    EXPECT_NEAR(res.bestValue, -1.0, 0.05);
}

TEST(RandomSearch, ExploresHigherDepth)
{
    Rng rng(5);
    auto res = randomSearch(
        [](const std::vector<double> &x) { return sphere(x); }, 2, 200,
        rng);
    EXPECT_EQ(res.evaluations, 200);
    EXPECT_EQ(res.bestX.size(), 4u);
    EXPECT_LT(res.bestValue, sphere({M_PI, M_PI, M_PI / 2, M_PI / 2}));
}

TEST(OptimizerNames, AreStable)
{
    EXPECT_EQ(NelderMead().name(), "nelder-mead");
    EXPECT_EQ(CobylaLite().name(), "cobyla-lite");
    EXPECT_EQ(Spsa().name(), "spsa");
}

} // namespace
} // namespace redqaoa
