/**
 * @file
 * Observability layer tests. The load-bearing contracts:
 *  - stats::LatencyHistogram merge is counter-exact: merging two
 *    histograms equals recording both sample sets into one;
 *  - structured log events render both text and JSON formats with
 *    the component/event/fields verbatim, and the threshold gates
 *    emission;
 *  - TraceRecorder accumulates hot spans by (name, parent) instead
 *    of growing unboundedly; TraceRing keeps a bounded ring plus a
 *    worst-first slowlog;
 *  - mergeWorkerTrace re-parents worker roots under lb.forward and
 *    shifts offsets onto the lb clock, and rejects malformed docs;
 *  - StageTimer records a stage histogram only while the profiler is
 *    enabled and a trace span only while a trace is active (the
 *    disabled path stays inert);
 *  - the Prometheus text exposition obeys the 0.0.4 grammar: HELP/
 *    TYPE headers per family, cumulative non-decreasing histogram
 *    buckets, +Inf bucket == _count;
 *  - the required metric family names stay pinned (dashboards break
 *    silently otherwise);
 *  - the HTTP endpoint answers GET /metrics with the exposition and
 *    anything else with 404;
 *  - the shared process/latency JSON builders keep their key sets
 *    (health and metrics cannot drift apart).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/json.hpp"
#include "common/stats.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_http.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "service/socket_util.hpp"

namespace redqaoa {
namespace {

// ---------------------------------------------------------------------
// LatencyHistogram (extracted into src/common/stats)
// ---------------------------------------------------------------------

TEST(LatencyHistogram, MergeEqualsCombinedRecording)
{
    const std::vector<double> left = {1e-6, 5e-5, 2e-3, 0.4};
    const std::vector<double> right = {3e-6, 8e-4, 0.02, 1.5, 7.0};

    stats::LatencyHistogram a;
    stats::LatencyHistogram b;
    stats::LatencyHistogram combined;
    for (double s : left) {
        a.record(s);
        combined.record(s);
    }
    for (double s : right) {
        b.record(s);
        combined.record(s);
    }
    a.merge(b);

    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.sumSeconds(), combined.sumSeconds());
    EXPECT_DOUBLE_EQ(a.maxMs(), combined.maxMs());
    for (int i = 0; i < stats::LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(a.bucketCount(i), combined.bucketCount(i)) << i;
    EXPECT_DOUBLE_EQ(a.percentileMs(0.5), combined.percentileMs(0.5));
    EXPECT_DOUBLE_EQ(a.percentileMs(0.99), combined.percentileMs(0.99));
}

TEST(LatencyHistogram, BucketEdgesAreMonotonic)
{
    for (int i = 1; i < stats::LatencyHistogram::kBuckets; ++i)
        EXPECT_LT(stats::LatencyHistogram::bucketUpperSeconds(i - 1),
                  stats::LatencyHistogram::bucketUpperSeconds(i));
}

// ---------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------

/** Restore the env-driven log config + default sink on exit. */
class LogConfigGuard
{
  public:
    ~LogConfigGuard()
    {
        obs::setLogSink(nullptr);
        obs::configureLogFromEnv();
    }
};

TEST(Log, TextFormatRendersEventAndFieldsVerbatim)
{
    LogConfigGuard guard;
    obs::configureLog(obs::LogLevel::Debug, /*json=*/false);
    const std::string line = obs::logInfo("redqaoa_serve", "serving")
                                 .field("shards", 4)
                                 .field("store_dir", "(none)")
                                 .render();
    // The grep contracts: "component: event" contiguous, fields as
    // key=value (service_smoke.sh greps "shards=4").
    EXPECT_NE(line.find("INFO redqaoa_serve: serving"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("shards=4"), std::string::npos) << line;
    EXPECT_NE(line.find("store_dir=(none)"), std::string::npos) << line;
}

TEST(Log, JsonFormatIsParseableWithTypedFields)
{
    LogConfigGuard guard;
    obs::configureLog(obs::LogLevel::Debug, /*json=*/true);
    const std::string line = obs::logWarn("lb", "worker died")
                                 .field("worker", 2)
                                 .field("fatal", false)
                                 .field("exit", "signal 9")
                                 .render();
    json::Value doc = json::Value::parse(line);
    EXPECT_EQ(doc.find("level")->asString(), "warn");
    EXPECT_EQ(doc.find("component")->asString(), "lb");
    EXPECT_EQ(doc.find("event")->asString(), "worker died");
    EXPECT_EQ(doc.find("worker")->asNumber(), 2.0);
    EXPECT_FALSE(doc.find("fatal")->asBool());
    EXPECT_EQ(doc.find("exit")->asString(), "signal 9");
    EXPECT_TRUE(doc.find("ts")->isString());
    EXPECT_TRUE(doc.find("mono_s")->isNumber());
}

TEST(Log, ThresholdGatesEmission)
{
    LogConfigGuard guard;
    obs::configureLog(obs::LogLevel::Error, /*json=*/false);
    std::vector<std::string> lines;
    obs::setLogSink([&lines](const std::string &line) {
        lines.push_back(line);
    });
    obs::logInfo("test", "below threshold");
    obs::logWarn("test", "still below");
    EXPECT_TRUE(lines.empty());
    obs::logError("test", "emitted");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("emitted"), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace recorder / ring
// ---------------------------------------------------------------------

TEST(Trace, AccumulateMergesHotSpansByNameAndParent)
{
    obs::TraceRecorder rec("abc123");
    rec.accumulate("backend.evaluate", "worker.execute", 10, 5);
    rec.accumulate("backend.evaluate", "worker.execute", 4, 7);
    rec.accumulate("store.lookup", "worker.execute", 2, 1);
    ASSERT_EQ(rec.spans().size(), 2u);
    const obs::TraceSpan &hot = rec.spans()[0];
    EXPECT_EQ(hot.name, "backend.evaluate");
    EXPECT_EQ(hot.count, 2u);
    EXPECT_EQ(hot.durUs, 12);
    EXPECT_EQ(hot.startUs, 4); // Earliest start wins.

    rec.finish();
    json::Value doc = rec.toJson();
    EXPECT_EQ(doc.find("id")->asString(), "abc123");
    EXPECT_TRUE(doc.find("total_us")->isNumber());
    EXPECT_EQ(doc.find("spans")->size(), 2u);
}

TEST(Trace, RingIsBoundedAndSlowlogIsWorstFirst)
{
    obs::TraceRing ring(/*ring_capacity=*/2, /*slowlog_capacity=*/2);
    const int delays_ms[] = {0, 6, 2, 4};
    for (int delay : delays_ms) {
        obs::TraceRecorder rec("t" + std::to_string(delay));
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        rec.finish();
        ring.add(rec);
    }
    EXPECT_EQ(ring.size(), 2u); // Ring keeps only the most recent.

    json::Value doc = ring.slowlogJson();
    EXPECT_EQ(doc.find("captured")->asNumber(), 4.0);
    const auto &slow = doc.find("slowlog")->asArray();
    ASSERT_EQ(slow.size(), 2u); // Slowlog keeps only the worst.
    EXPECT_EQ(slow[0].find("id")->asString(), "t6");
    EXPECT_EQ(slow[1].find("id")->asString(), "t4");
    EXPECT_GE(slow[0].find("total_us")->asNumber(),
              slow[1].find("total_us")->asNumber());
}

TEST(Trace, MergeWorkerTraceReparentsRootsAndShiftsOffsets)
{
    json::Value worker = json::Value::object();
    worker["id"] = "worker-id";
    worker["total_us"] = 50;
    json::Value spans = json::Value::array();
    json::Value root = json::Value::object();
    root["name"] = "worker.admission";
    root["parent"] = "";
    root["start_us"] = 0;
    root["dur_us"] = 3;
    root["count"] = 1;
    spans.push(std::move(root));
    json::Value child = json::Value::object();
    child["name"] = "backend.evaluate";
    child["parent"] = "worker.execute";
    child["start_us"] = 10;
    child["dur_us"] = 30;
    child["count"] = 120;
    spans.push(std::move(child));
    worker["spans"] = std::move(spans);

    obs::TraceRecorder lb("lb-id");
    ASSERT_TRUE(obs::mergeWorkerTrace(lb, worker, /*forward_start=*/100));
    ASSERT_EQ(lb.spans().size(), 2u);
    EXPECT_EQ(lb.spans()[0].name, "worker.admission");
    EXPECT_EQ(lb.spans()[0].parent, "lb.forward"); // Root re-parented.
    EXPECT_EQ(lb.spans()[0].startUs, 100);         // Shifted.
    EXPECT_EQ(lb.spans()[1].parent, "worker.execute"); // Unchanged.
    EXPECT_EQ(lb.spans()[1].startUs, 110);
    EXPECT_EQ(lb.spans()[1].count, 120u);

    // Malformed docs are rejected without touching the recorder.
    obs::TraceRecorder untouched("x");
    EXPECT_FALSE(
        obs::mergeWorkerTrace(untouched, json::Value("oops"), 0));
    json::Value bad_spans = json::Value::object();
    bad_spans["spans"] = json::Value(7);
    EXPECT_FALSE(obs::mergeWorkerTrace(untouched, bad_spans, 0));
    EXPECT_TRUE(untouched.spans().empty());
}

// ---------------------------------------------------------------------
// Profiler / stage timers
// ---------------------------------------------------------------------

/** Restore profiler enablement + data on exit. */
class ProfilerGuard
{
  public:
    ~ProfilerGuard()
    {
        obs::Profiler::global().setEnabled(true);
        obs::Profiler::global().reset();
    }
};

bool
hasStage(const char *name)
{
    for (const auto &[stage, hist] :
         obs::Profiler::global().stageSnapshot())
        if (stage == name)
            return true;
    return false;
}

TEST(Profiler, StageTimerRecordsOnlyWhileEnabled)
{
    ProfilerGuard guard;
    obs::Profiler &profiler = obs::Profiler::global();
    profiler.reset();

    profiler.setEnabled(false);
    {
        obs::StageTimer timer("test.disabled");
    }
    EXPECT_FALSE(hasStage("test.disabled"));

    profiler.setEnabled(true);
    {
        obs::StageTimer timer("test.enabled");
    }
    ASSERT_TRUE(hasStage("test.enabled"));
    for (const auto &[stage, hist] : profiler.stageSnapshot())
        if (stage == "test.enabled")
            EXPECT_EQ(hist.count(), 1u);
}

TEST(Profiler, StageTimerFeedsTheActiveTraceEvenWhenDisabled)
{
    ProfilerGuard guard;
    obs::Profiler::global().setEnabled(false);
    EXPECT_EQ(obs::activeTrace(), nullptr);

    obs::TraceRecorder rec("traced");
    {
        obs::TraceScope scope(&rec);
        EXPECT_EQ(obs::activeTrace(), &rec);
        obs::StageTimer timer("test.span", "parent.span");
    }
    EXPECT_EQ(obs::activeTrace(), nullptr);
    ASSERT_EQ(rec.spans().size(), 1u);
    EXPECT_EQ(rec.spans()[0].name, "test.span");
    EXPECT_EQ(rec.spans()[0].parent, "parent.span");
    // The histogram side stayed off.
    EXPECT_FALSE(hasStage("test.span"));
}

TEST(Profiler, CountersAggregate)
{
    ProfilerGuard guard;
    obs::Profiler &profiler = obs::Profiler::global();
    profiler.reset();
    profiler.count("backend.statevector");
    profiler.count("backend.statevector", 2);
    bool found = false;
    for (const auto &[name, value] : profiler.counterSnapshot())
        if (name == "backend.statevector") {
            found = true;
            EXPECT_EQ(value, 3u);
        }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------

TEST(Metrics, PrometheusExpositionObeysTheGrammar)
{
    obs::MetricsSnapshot snapshot;
    snapshot.counter("redqaoa_test_total", "A counter.", 3);
    snapshot.gauge("redqaoa_test_depth", "A gauge.", 2,
                   {{"shard", "0"}});
    stats::LatencyHistogram hist;
    hist.record(1e-5);
    hist.record(3e-4);
    hist.record(0.25);
    snapshot.histogram("redqaoa_test_seconds", "A histogram.", hist);

    const std::string text = snapshot.prometheusText();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');

    std::istringstream lines(text);
    std::string line;
    std::uint64_t last_bucket = 0;
    std::uint64_t inf_bucket = 0;
    std::uint64_t hist_count = 0;
    int help_lines = 0;
    int type_lines = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line.rfind("# HELP ", 0) == 0) {
            ++help_lines;
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            ++type_lines;
            continue;
        }
        // Sample line: name[{labels}] value — one space, value parses.
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string name = line.substr(0, space);
        const std::string value = line.substr(space + 1);
        EXPECT_NO_THROW({
            std::size_t used = 0;
            (void)std::stod(value, &used);
            EXPECT_EQ(used, value.size()) << line;
        }) << line;
        if (name.rfind("redqaoa_test_seconds_bucket", 0) == 0) {
            const std::uint64_t count =
                static_cast<std::uint64_t>(std::stod(value));
            EXPECT_GE(count, last_bucket)
                << "buckets must be cumulative: " << line;
            last_bucket = count;
            if (name.find("le=\"+Inf\"") != std::string::npos)
                inf_bucket = count;
        }
        if (name == "redqaoa_test_seconds_count")
            hist_count = static_cast<std::uint64_t>(std::stod(value));
    }
    EXPECT_EQ(help_lines, 3);
    EXPECT_EQ(type_lines, 3);
    EXPECT_EQ(inf_bucket, 3u);
    EXPECT_EQ(hist_count, 3u);
}

TEST(Metrics, RequiredFamilyNamesStayPinned)
{
    obs::MetricsSnapshot snapshot;
    obs::addProcessMetrics(snapshot, 1.0, ::getpid());
    obs::addEngineStatsMetrics(snapshot, EngineStats{});
    obs::Profiler::global().recordStage("test.stage", 1e-4);
    obs::Profiler::global().count("backend.statevector");
    obs::addProfilerMetrics(snapshot);
    obs::Profiler::global().reset();

    std::set<std::string> names;
    for (const std::string &name : snapshot.familyNames())
        names.insert(name);
    const char *required[] = {
        "redqaoa_uptime_seconds",
        "redqaoa_process_pid",
        "redqaoa_engine_jobs_total",
        "redqaoa_engine_drains_total",
        "redqaoa_engine_points_total",
        "redqaoa_engine_evaluated_total",
        "redqaoa_engine_memo_hits_total",
        "redqaoa_engine_evaluator_cache_total",
        "redqaoa_engine_artifact_cache_total",
        "redqaoa_engine_graphs",
        "redqaoa_store_events_total",
        "redqaoa_store_records",
        "redqaoa_stage_seconds",
        "redqaoa_backend_resolutions_total",
    };
    for (const char *name : required)
        EXPECT_TRUE(names.count(name)) << "missing family: " << name;
}

TEST(Metrics, SharedJsonBuildersKeepTheirKeySets)
{
    json::Value process = obs::processInfoJson(12.5, 4242);
    std::vector<std::string> process_keys;
    for (const auto &[key, value] : process.asObject())
        process_keys.push_back(key);
    EXPECT_EQ(process_keys,
              (std::vector<std::string>{"uptime_seconds", "pid"}));

    stats::LatencyHistogram hist;
    hist.record(0.001);
    json::Value latency = obs::latencySummaryJson(hist);
    std::vector<std::string> latency_keys;
    for (const auto &[key, value] : latency.asObject())
        latency_keys.push_back(key);
    EXPECT_EQ(latency_keys,
              (std::vector<std::string>{"count", "mean_ms", "p50_ms",
                                        "p99_ms", "max_ms"}));
}

// ---------------------------------------------------------------------
// HTTP endpoint
// ---------------------------------------------------------------------

std::string
httpGet(int port, const std::string &target)
{
    int fd = service::detail::connectLoopback(port, 2000);
    EXPECT_GE(fd, 0);
    const std::string request = "GET " + target +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n";
    EXPECT_TRUE(
        service::detail::writeAll(fd, request.data(), request.size()));
    std::string response;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::read(fd, buf, sizeof buf)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

TEST(MetricsHttp, ServesTheExpositionUnderGetMetrics)
{
    obs::MetricsHttpServer server(
        0, [] { return std::string("# HELP x y\n# TYPE x counter\nx 1\n"); });
    ASSERT_GT(server.port(), 0);

    const std::string ok = httpGet(server.port(), "/metrics");
    EXPECT_NE(ok.find("200"), std::string::npos) << ok;
    EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos)
        << ok;
    EXPECT_NE(ok.find("x 1\n"), std::string::npos) << ok;

    const std::string missing = httpGet(server.port(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos) << missing;

    server.stop();
    server.stop(); // Idempotent.
}

} // namespace
} // namespace redqaoa
