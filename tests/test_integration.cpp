/**
 * @file
 * Cross-module integration and property tests: the paper's central
 * claims expressed as sweeps over random instances rather than single
 * fixtures. These are the tests that would catch a regression breaking
 * the reproduction without breaking any single module.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/red_qaoa.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "landscape/landscape.hpp"
#include "pooling/poolers.hpp"

namespace redqaoa {
namespace {

/**
 * Paper §4.2: graphs with matching average node degree have close
 * normalized landscapes; graphs with very different AND do not.
 */
class LandscapeConcentration : public ::testing::TestWithParam<int>
{};

TEST_P(LandscapeConcentration, AndMatchingBeatsAndMismatching)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    Graph base = gen::connectedGnp(9, 0.4, rng);
    // AND-matched cousin: same n, same edge count (so identical AND).
    Graph matched = gen::erdosRenyiGnm(9, base.numEdges(), rng);
    // AND-mismatched: near-complete graph.
    Graph mismatched = gen::connectedGnp(9, 0.9, rng);

    ExactEvaluator e0(base), e1(matched), e2(mismatched);
    Landscape l0 = Landscape::evaluate(e0, 14);
    Landscape l1 = Landscape::evaluate(e1, 14);
    Landscape l2 = Landscape::evaluate(e2, 14);
    // The matched instance tracks the base landscape more closely.
    EXPECT_LT(landscapeMse(l0, l1), landscapeMse(l0, l2) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LandscapeConcentration,
                         ::testing::Range(0, 8));

/**
 * Paper §4.5/Fig 8: the annealed subgraph matches the original's
 * landscape at least as well as same-size GNN pooling on average.
 */
TEST(ReducerVsPoolers, LowerMeanMseAtMatchedSize)
{
    Rng rng(91);
    double sa_total = 0.0;
    std::vector<double> pool_total(3, 0.0);
    const int kTrials = 8;
    auto poolers = pooling::allPoolers();
    for (int t = 0; t < kTrials; ++t) {
        Graph g = gen::connectedGnp(10, 0.4, rng);
        int k = 7;
        RedQaoaReducer reducer;
        Graph reduced = reducer.reduceToSize(g, k, rng).reduced.graph;

        ExactEvaluator base_eval(g);
        Landscape base = Landscape::evaluate(base_eval, 12);
        auto mse_of = [&](const Graph &s) {
            ExactEvaluator eval(s);
            Landscape ls = Landscape::evaluate(eval, 12);
            return landscapeMse(base, ls);
        };
        sa_total += mse_of(reduced);
        for (std::size_t m = 0; m < poolers.size(); ++m)
            pool_total[m] += mse_of(poolers[m]->pool(g, k));
    }
    for (std::size_t m = 0; m < pool_total.size(); ++m)
        EXPECT_LE(sa_total, pool_total[m] + 0.02 * kTrials)
            << "pooler " << m;
}

/** The reducer's AND-ratio guarantee holds across all datasets. */
TEST(ReducerGuarantees, HoldAcrossDatasets)
{
    Rng rng(92);
    RedQaoaReducer reducer;
    for (const Dataset &d :
         {datasets::makeAids(50, 12), datasets::makeLinux(51, 12),
          datasets::makeImdb(52, 12)}) {
        for (const Graph &g : d.filterByNodes(5, 12)) {
            ReductionResult res = reducer.reduce(g, rng);
            EXPECT_GE(res.andRatio, 0.7 - 1e-9) << d.name;
            EXPECT_TRUE(res.reduced.graph.isConnected()) << d.name;
            EXPECT_LE(res.nodeReduction, 0.35 + 0.2) << d.name;
        }
    }
}

/**
 * End-to-end sanity across seeds: the Red-QAOA pipeline's ideal-energy
 * outcome stays within a modest band of the matched-budget baseline
 * (the Fig 17 near-parity claim), despite searching on a smaller
 * circuit.
 */
class PipelineParity : public ::testing::TestWithParam<int>
{};

TEST_P(PipelineParity, NearBaselineAtMatchedBudget)
{
    Rng g_rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
    Graph g = gen::connectedGnp(9, 0.4, g_rng);

    PipelineOptions opts;
    opts.layers = 1;
    opts.noise = noise::ideal();
    opts.restarts = 3;
    opts.searchEvaluations = 50;
    opts.refineEvaluations = 30;
    RedQaoaPipeline pipe(opts);
    Rng r1(1000), r2(1000);
    PipelineResult ours = pipe.run(g, r1);
    PipelineResult baseline = pipe.runBaseline(g, r2);
    // Fig 17 reports ~97% average parity at 20-150 restarts; at this
    // test's tiny budget a wider band is the honest invariant.
    EXPECT_GT(ours.idealEnergy, 0.75 * baseline.idealEnergy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineParity, ::testing::Range(0, 6));

/** Landscape MSE metric properties used throughout the experiments. */
TEST(MseMetricProperties, SymmetricNonNegativeIdentity)
{
    Rng rng(93);
    for (int t = 0; t < 6; ++t) {
        Graph a = gen::connectedGnp(7, 0.4, rng);
        Graph b = gen::connectedGnp(7, 0.5, rng);
        ExactEvaluator ea(a), eb(b);
        Landscape la = Landscape::evaluate(ea, 10);
        Landscape lb = Landscape::evaluate(eb, 10);
        double ab = landscapeMse(la, lb);
        double ba = landscapeMse(lb, la);
        EXPECT_DOUBLE_EQ(ab, ba);
        EXPECT_GE(ab, 0.0);
        EXPECT_LE(ab, 1.0);
        EXPECT_DOUBLE_EQ(landscapeMse(la, la), 0.0);
    }
}

/** Noise monotonicity: worse devices produce larger noisy MSE. */
TEST(NoiseMonotonicity, ScaledSweepIsOrdered)
{
    Rng rng(94);
    Graph g = gen::connectedGnp(8, 0.4, rng);
    ExactEvaluator ideal(g);
    Landscape ideal_ls = Landscape::evaluate(ideal, 10);

    std::vector<double> mses;
    for (double s : {0.5, 2.0, 8.0}) {
        NoiseModel nm = noise::scaled(s);
        NoisyEvaluator noisy(g, nm, 16, 5);
        Landscape noisy_ls = Landscape::evaluate(noisy, 10);
        mses.push_back(landscapeMse(ideal_ls.values(), noisy_ls.values()));
    }
    // Allow adjacent-tier noise to tie, but the extremes must be ordered.
    EXPECT_LT(mses.front(), mses.back());
}

/** Deterministic replay: entire pipeline is seed-stable end to end. */
TEST(Determinism, FullStackReplay)
{
    auto run_once = [] {
        Rng rng(4242);
        Graph g = gen::connectedGnp(9, 0.4, rng);
        RedQaoaReducer reducer;
        ReductionResult red = reducer.reduce(g, rng);
        NoisyEvaluator noisy(red.reduced.graph, noise::ibmCairo(), 6, 7,
                             512);
        QaoaParams p({0.8}, {0.4});
        return std::make_pair(red.reduced.graph.numEdges(),
                              noisy.expectation(p));
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a.first, b.first);
    EXPECT_DOUBLE_EQ(a.second, b.second);
}

} // namespace
} // namespace redqaoa
