/**
 * @file
 * The closed-form p=1 evaluator must match the statevector simulator to
 * machine precision on arbitrary graphs — this is the correctness anchor
 * for every large-graph experiment (Figs 17, 18, 21).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "quantum/analytic_p1.hpp"
#include "quantum/maxcut.hpp"

namespace redqaoa {
namespace {

void
expectAnalyticMatchesStatevector(const Graph &g, Rng &rng, double tol)
{
    QaoaSimulator sim(g);
    AnalyticP1Evaluator analytic(g);
    for (int t = 0; t < 12; ++t) {
        double gm = rng.uniform(0.0, 2.0 * M_PI);
        double bt = rng.uniform(0.0, M_PI);
        QaoaParams p({gm}, {bt});
        EXPECT_NEAR(analytic.expectation(gm, bt), sim.expectation(p), tol)
            << "graph " << g.summary() << " gamma=" << gm
            << " beta=" << bt;
    }
}

TEST(AnalyticP1, SingleEdge)
{
    Graph g(2, {{0, 1}});
    Rng rng(1);
    expectAnalyticMatchesStatevector(g, rng, 1e-10);
}

TEST(AnalyticP1, Path3)
{
    Graph g(3, {{0, 1}, {1, 2}});
    Rng rng(2);
    expectAnalyticMatchesStatevector(g, rng, 1e-10);
}

TEST(AnalyticP1, TriangleHasCommonNeighbors)
{
    Graph g = gen::complete(3);
    Rng rng(3);
    expectAnalyticMatchesStatevector(g, rng, 1e-10);
}

TEST(AnalyticP1, CompleteK5)
{
    Graph g = gen::complete(5);
    Rng rng(4);
    expectAnalyticMatchesStatevector(g, rng, 1e-10);
}

TEST(AnalyticP1, Cycle7)
{
    Graph g = gen::cycle(7);
    Rng rng(5);
    expectAnalyticMatchesStatevector(g, rng, 1e-10);
}

TEST(AnalyticP1, Star8)
{
    Graph g = gen::star(8);
    Rng rng(6);
    expectAnalyticMatchesStatevector(g, rng, 1e-10);
}

/** Property sweep over random graphs. */
class AnalyticRandomGraphs : public ::testing::TestWithParam<int>
{};

TEST_P(AnalyticRandomGraphs, MatchesStatevector)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
    int n = 4 + static_cast<int>(rng.index(8)); // 4..11 nodes.
    Graph g = gen::connectedGnp(n, 0.45, rng);
    expectAnalyticMatchesStatevector(g, rng, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticRandomGraphs,
                         ::testing::Range(0, 15));

TEST(AnalyticP1, PerEdgeTermsSumToTotal)
{
    Rng rng(77);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    double gm = 1.1, bt = 0.4;
    double total = 0.0;
    for (const Edge &e : g.edges())
        total += analyticEdgeExpectationP1(g, e, gm, bt);
    EXPECT_NEAR(total, analyticExpectationP1(g, gm, bt), 1e-12);
}

TEST(AnalyticP1, ZeroAnglesGiveHalfEdges)
{
    Rng rng(78);
    Graph g = gen::connectedGnp(10, 0.35, rng);
    EXPECT_NEAR(analyticExpectationP1(g, 0.0, 0.0), g.numEdges() / 2.0,
                1e-12);
}

TEST(AnalyticP1, ScalesToThousandNodes)
{
    Rng rng(79);
    Graph g = gen::erdosRenyiGnp(1000, 0.01, rng);
    AnalyticP1Evaluator eval(g);
    double v = eval.expectation(0.9, 0.3);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, g.numEdges());
}

} // namespace
} // namespace redqaoa
