/**
 * @file
 * Kernel-overhaul equivalence suite. Three layers of protection:
 *  - golden values: ExactEvaluator / NoisyEvaluator / LightconeEvaluator
 *    expectations on fixed graphs+params, pinned to 1e-12 against the
 *    values the pre-overhaul kernels produced (captured at threads=1);
 *  - kernel equivalences: each fused/fast-path kernel against the
 *    simple reference it replaced, bit-for-bit on a 1-thread pool;
 *  - thread-count invariance: the intra-state parallel paths must give
 *    identical results at 2 and 8 threads, and stay within 1e-12 of
 *    the serial 1-thread value (reductions regroup into fixed chunks
 *    above the parallel threshold, so ulp-level drift is allowed
 *    across the 1-vs-many boundary but nothing more).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hpp"
#include "engine/eval_spec.hpp"
#include "graph/generators.hpp"
#include "quantum/batched_state.hpp"
#include "quantum/evaluator.hpp"

namespace redqaoa {
namespace {

constexpr double kGolden = 1e-12;

class ThreadGuard
{
  public:
    ThreadGuard() : saved_(ThreadPool::globalThreadCount()) {}
    ~ThreadGuard() { ThreadPool::setGlobalThreads(saved_); }

  private:
    int saved_;
};

// ---------------------------------------------------------------------
// Golden values (generated with the pre-overhaul scalar kernels).
// ---------------------------------------------------------------------

TEST(KernelGolden, ExactEvaluatorMatchesPreOverhaul)
{
    Rng rng(3);
    Graph g = gen::connectedGnp(10, 0.4, rng);
    ASSERT_EQ(g.numEdges(), 18);
    ExactEvaluator eval(g);
    EXPECT_NEAR(eval.expectation(QaoaParams({0.8}, {0.4})),
                10.986896769608293, kGolden);
    EXPECT_NEAR(eval.expectation(
                    QaoaParams({0.8, 0.5, 0.3}, {0.4, 0.2, 0.1})),
                11.243914612497715, kGolden);
}

TEST(KernelGolden, NoisyEvaluatorMatchesPreOverhaul)
{
    // The trajectory path must consume the RNG stream exactly as the
    // historical per-gate implementation did; any drift shows up here
    // as a large delta, not an ulp.
    Rng rng(5);
    Graph g = gen::connectedGnp(8, 0.45, rng);
    ASSERT_EQ(g.numEdges(), 14);
    QaoaParams p2({0.8, 0.5}, {0.4, 0.2});
    NoisyEvaluator exact_readout(g, noise::ibmKolkata(), 8, 7, 0);
    EXPECT_NEAR(exact_readout.expectation(p2), 8.0074688351753913,
                kGolden);
    NoisyEvaluator sampled(g, noise::ibmKolkata(), 8, 7, 333);
    EXPECT_NEAR(sampled.expectation(p2), 8.0792682926829276, kGolden);
}

TEST(KernelGolden, LightconeEvaluatorMatchesPreOverhaul)
{
    Rng rng(11);
    Graph g = gen::randomRegular(20, 3, rng);
    ASSERT_EQ(g.numEdges(), 30);
    QaoaParams p2({0.8, 0.5}, {0.4, 0.2});
    LightconeCutEvaluator cone12(g, 2, 12);
    EXPECT_NEAR(cone12.expectation(p2), 19.406385972506314, kGolden);
    LightconeCutEvaluator cone16(g, 2, 16);
    EXPECT_NEAR(cone16.expectation(p2), 19.400396703537446, kGolden);
}

// ---------------------------------------------------------------------
// Fused / fast-path kernels against their references (1-thread pool:
// every kernel takes the serial path, results must be bit-identical).
// ---------------------------------------------------------------------

TEST(KernelEquivalence, PhaseTableMatchesDiagonalPhaseBitwise)
{
    ThreadGuard guard;
    ThreadPool::setGlobalThreads(1);
    Rng rng(21);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    CutTable table = makeCutTable(g);
    std::vector<double> diag(table.codes.size());
    for (std::size_t z = 0; z < diag.size(); ++z)
        diag[z] = static_cast<double>(table.codes[z]);
    const double angle = 0.731;
    std::vector<Complex> phases;
    buildPhaseTable(table.maxCode, angle, phases);

    Statevector a = Statevector::uniform(9);
    Statevector b = Statevector::uniform(9);
    a.applyRxAll(0.9); // Some structure before the layer under test.
    b.applyRxAll(0.9);
    a.applyDiagonalPhase(diag, angle);
    b.applyPhaseTable(table.codes, phases);
    for (std::size_t i = 0; i < a.dim(); ++i) {
        EXPECT_EQ(a[i].real(), b[i].real());
        EXPECT_EQ(a[i].imag(), b[i].imag());
    }
}

TEST(KernelEquivalence, FusedRxAllMatchesPerQubitRxBitwise)
{
    ThreadGuard guard;
    ThreadPool::setGlobalThreads(1);
    for (int n : {3, 11, 13}) { // Below, at, and above the cache block.
        Statevector a = Statevector::uniform(n);
        Statevector b = Statevector::uniform(n);
        a.applyDiagonalPhase(std::vector<double>(a.dim(), 1.5), 0.8);
        b.applyDiagonalPhase(std::vector<double>(b.dim(), 1.5), 0.8);
        a.applyRxAll(0.7);
        for (int q = 0; q < n; ++q)
            b.applyRx(q, 0.7);
        for (std::size_t i = 0; i < a.dim(); ++i) {
            ASSERT_EQ(a[i].real(), b[i].real()) << "n=" << n;
            ASSERT_EQ(a[i].imag(), b[i].imag()) << "n=" << n;
        }
    }
}

TEST(KernelEquivalence, RzzBatchMatchesSequentialRzz)
{
    ThreadGuard guard;
    ThreadPool::setGlobalThreads(1);
    Rng rng(33);
    const int n = 10;
    std::vector<RzzTerm> terms;
    Statevector a = Statevector::uniform(n);
    Statevector b = Statevector::uniform(n);
    for (int t = 0; t < 17; ++t) { // Spans several batch tiles.
        int u = static_cast<int>(rng.index(n));
        int v = (u + 1 + static_cast<int>(rng.index(n - 1))) % n;
        double theta = rng.uniform(-1.5, 1.5);
        terms.push_back(makeRzzTerm(u, v, theta));
        b.applyRzz(u, v, theta);
    }
    a.applyRzzBatch(terms);
    for (std::size_t i = 0; i < a.dim(); ++i)
        EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-14)
            << "batched phase product drifted at amp " << i;
}

TEST(KernelEquivalence, FusedZAndZzMatchesIndividualBitwise)
{
    ThreadGuard guard;
    ThreadPool::setGlobalThreads(1);
    Rng rng(44);
    Graph g = gen::connectedGnp(8, 0.5, rng);
    QaoaSimulator sim(g);
    Statevector psi = sim.state(QaoaParams({0.8}, {0.4}));

    std::vector<std::pair<int, int>> pairs;
    for (const Edge &e : g.edges())
        pairs.emplace_back(e.u, e.v);
    std::vector<double> z(static_cast<std::size_t>(g.numNodes()));
    std::vector<double> zz(pairs.size());
    psi.zAndZzExpectations(pairs, z, zz);
    for (int q = 0; q < g.numNodes(); ++q)
        EXPECT_EQ(z[static_cast<std::size_t>(q)], psi.zExpectation(q));
    for (std::size_t k = 0; k < pairs.size(); ++k)
        EXPECT_EQ(zz[k],
                  psi.zzExpectation(pairs[k].first, pairs[k].second));
}

TEST(KernelEquivalence, ExpectationFromTableMatchesManualLoop)
{
    ThreadGuard guard;
    ThreadPool::setGlobalThreads(1);
    Rng rng(55);
    Graph g = gen::connectedGnp(9, 0.35, rng);
    QaoaSimulator sim(g);
    Statevector psi = sim.state(QaoaParams({1.1}, {0.3}));
    const auto &codes = sim.costTable();
    std::vector<double> cut(codes.begin(), codes.end());
    double manual = 0.0;
    for (std::size_t z = 0; z < psi.dim(); ++z)
        manual += std::norm(psi[z]) * cut[z];
    EXPECT_EQ(psi.expectationFromTable(cut), manual);
    EXPECT_EQ(psi.expectationFromCodes(codes), manual);
    EXPECT_EQ(sim.expectation(QaoaParams({1.1}, {0.3})), manual);
}

TEST(KernelEquivalence, CutTableCodesMatchCutValue)
{
    Rng rng(66);
    Graph g = gen::connectedGnp(11, 0.3, rng);
    CutTable table = makeCutTable(g);
    ASSERT_EQ(table.codes.size(), std::size_t{1} << 11);
    EXPECT_EQ(table.maxCode, g.numEdges());
    for (std::uint64_t z = 0; z < table.codes.size(); ++z)
        ASSERT_EQ(table.codes[z], cutValue(g, z));
    // Double-table API agrees entry for entry.
    std::vector<double> doubles = cutTable(g);
    for (std::size_t z = 0; z < doubles.size(); ++z)
        ASSERT_EQ(doubles[z], static_cast<double>(table.codes[z]));
}

TEST(KernelEquivalence, SampleIntoMatchesSample)
{
    Statevector psi = Statevector::uniform(6);
    psi.applyRxAll(0.4);
    Rng r1(9), r2(9);
    auto a = psi.sample(200, r1);
    std::vector<std::uint64_t> b;
    psi.sampleInto(200, r2, b);
    EXPECT_EQ(a, b);
}

TEST(KernelEquivalence, ScratchStateResetsCleanly)
{
    Statevector &s = scratchUniformState(StateScratch::kEvaluator, 5);
    s.applyRxAll(1.0);
    Statevector &t = scratchUniformState(StateScratch::kEvaluator, 5);
    EXPECT_EQ(&s, &t); // Same per-thread instance...
    Statevector u = Statevector::uniform(5);
    for (std::size_t i = 0; i < u.dim(); ++i)
        EXPECT_EQ(t[i], u[i]); // ...reset to a fresh uniform state.
    // Distinct slots never alias.
    Statevector &v = scratchUniformState(StateScratch::kTrajectory, 5);
    EXPECT_NE(&t, &v);
}

// ---------------------------------------------------------------------
// Thread-count invariance of the intra-state parallel paths. n = 16
// (65536 amplitudes) is above the parallel threshold, so these exercise
// the chunked kernels and reductions for real.
// ---------------------------------------------------------------------

TEST(KernelThreads, LargeStateExpectationInvariantAcrossPools)
{
    ThreadGuard guard;
    Rng rng(77);
    Graph g = gen::connectedGnp(16, 0.25, rng);
    QaoaParams p({0.8, 0.5}, {0.4, 0.2});

    ThreadPool::setGlobalThreads(1);
    QaoaSimulator sim1(g);
    const double serial = sim1.expectation(p);

    std::vector<double> multi;
    for (int threads : {2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        QaoaSimulator sim(g);
        multi.push_back(sim.expectation(p));
    }
    // Fixed-chunk reductions: every multi-thread pool gives the same
    // bits; the serial path may differ by reassociation ulps only.
    EXPECT_EQ(multi[0], multi[1]);
    EXPECT_NEAR(serial, multi[0], kGolden);
}

TEST(KernelThreads, LightconeInvariantAcrossPools)
{
    ThreadGuard guard;
    Rng rng(88);
    Graph g = gen::randomRegular(24, 3, rng);
    QaoaParams p({0.8, 0.5}, {0.4, 0.2});

    ThreadPool::setGlobalThreads(1);
    LightconeEvaluator serial_eval(g, 2, 16);
    const double serial = serial_eval.expectation(p);

    std::vector<double> multi;
    for (int threads : {2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        LightconeEvaluator eval(g, 2, 16);
        multi.push_back(eval.expectation(p));
    }
    EXPECT_EQ(multi[0], multi[1]);
    EXPECT_NEAR(serial, multi[0], kGolden);
}

TEST(KernelThreads, NoisySmallStateBitIdenticalAcrossPools)
{
    // Below the parallel threshold every statevector kernel is serial,
    // so the PR-1 contract still holds exactly: the trajectory value is
    // bit-identical at every pool size.
    ThreadGuard guard;
    Rng rng(99);
    Graph g = gen::connectedGnp(8, 0.45, rng);
    QaoaParams p({0.8}, {0.4});
    std::vector<double> values;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        NoisyEvaluator eval(g, noise::ibmKolkata(), 8, 7, 0);
        values.push_back(eval.expectation(p));
    }
    EXPECT_EQ(values[0], values[1]);
    EXPECT_EQ(values[1], values[2]);
}

TEST(KernelThreads, ElementwiseKernelsBitIdenticalAcrossPools)
{
    // Element-wise updates (phase table, mixer butterflies) are exact
    // under any partition: a 16-qubit layer stack must produce the same
    // bits at 1, 2, and 8 threads.
    ThreadGuard guard;
    Rng rng(111);
    Graph g = gen::connectedGnp(16, 0.25, rng);
    CutTable table = makeCutTable(g);
    std::vector<Complex> phases;
    buildPhaseTable(table.maxCode, 0.9, phases);

    std::vector<std::vector<Complex>> amps;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        Statevector psi = Statevector::uniform(16);
        psi.applyPhaseTable(table.codes, phases);
        psi.applyRxAll(0.7);
        psi.applyRzz(3, 11, 0.4);
        amps.push_back(psi.amplitudes());
    }
    EXPECT_EQ(amps[0], amps[1]);
    EXPECT_EQ(amps[1], amps[2]);
}

// ---------------------------------------------------------------------
// Batched-point sweeps (BatchedStateSet lane groups). The contract is
// byte-identity with the point-at-a-time path AT EACH thread count:
// per lane the batched kernels perform the scalar arithmetic sequence
// exactly, including the chunked-reduction shape above the parallel
// threshold.
// ---------------------------------------------------------------------

/** Restore automatic kernel selection when a test returns. */
class KernelGuard
{
  public:
    ~KernelGuard() { batched::forceKernels(nullptr); }
};

std::vector<double>
batchedValues(const Graph &g, const std::vector<QaoaParams> &pts)
{
    CutTable table = makeCutTable(g);
    std::vector<const QaoaParams *> ptrs;
    ptrs.reserve(pts.size());
    for (const QaoaParams &p : pts)
        ptrs.push_back(&p);
    std::vector<double> out(pts.size());
    batchedCutExpectations(table.codes, table.maxCode, g.numNodes(),
                           ptrs, out);
    return out;
}

/** Mixed-depth point set: full lane groups plus a padded partial one. */
std::vector<QaoaParams>
mixedDepthPoints(Rng &rng, std::size_t p1_count, std::size_t p3_count)
{
    std::vector<QaoaParams> pts;
    for (std::size_t i = 0; i < p1_count; ++i)
        pts.emplace_back(std::vector<double>{rng.uniform(-1.5, 1.5)},
                         std::vector<double>{rng.uniform(-1.5, 1.5)});
    for (std::size_t i = 0; i < p3_count; ++i)
        pts.emplace_back(std::vector<double>{rng.uniform(-1.5, 1.5),
                                             rng.uniform(-1.5, 1.5),
                                             rng.uniform(-1.5, 1.5)},
                         std::vector<double>{rng.uniform(-1.5, 1.5),
                                             rng.uniform(-1.5, 1.5),
                                             rng.uniform(-1.5, 1.5)});
    return pts;
}

TEST(BatchedKernels, GoldenAndBitIdenticalToScalarPath)
{
    ThreadGuard guard;
    KernelGuard kernels;
    ThreadPool::setGlobalThreads(1);
    Rng rng(3);
    Graph g = gen::connectedGnp(10, 0.4, rng);
    ASSERT_EQ(g.numEdges(), 18);

    // The golden points lead the batch; the rest fill out full and
    // partial lane groups at both depths.
    Rng prng(123);
    std::vector<QaoaParams> pts = mixedDepthPoints(prng, 9, 4);
    pts[0] = QaoaParams({0.8}, {0.4});
    pts[9] = QaoaParams({0.8, 0.5, 0.3}, {0.4, 0.2, 0.1});

    ExactEvaluator direct(g);
    for (const batched::KernelOps *ops :
         {&batched::scalarKernels(), batched::avx2Kernels()}) {
        if (!ops)
            GTEST_SKIP() << "AVX2 kernels unavailable on this build/CPU";
        batched::forceKernels(ops);
        std::vector<double> got = batchedValues(g, pts);
        EXPECT_NEAR(got[0], 10.986896769608293, kGolden) << ops->name;
        EXPECT_NEAR(got[9], 11.243914612497715, kGolden) << ops->name;
        for (std::size_t i = 0; i < pts.size(); ++i)
            EXPECT_EQ(got[i], direct.expectation(pts[i]))
                << ops->name << " point " << i;
    }
}

TEST(BatchedKernels, ByteIdenticalAcrossPoolsOnLargeState)
{
    // n = 16 crosses the intra-state parallel threshold, so the batched
    // sweep must mirror the chunked reduction: at EVERY thread count
    // the batched value equals the point-at-a-time value computed at
    // that same thread count, bit for bit.
    ThreadGuard guard;
    Rng rng(77);
    Graph g = gen::connectedGnp(16, 0.25, rng);
    Rng prng(321);
    std::vector<QaoaParams> pts = mixedDepthPoints(prng, 6, 5);

    std::vector<std::vector<double>> multi;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        std::vector<double> got = batchedValues(g, pts);
        QaoaSimulator sim(g);
        for (std::size_t i = 0; i < pts.size(); ++i)
            EXPECT_EQ(got[i], sim.expectation(pts[i]))
                << "threads=" << threads << " point " << i;
        if (threads >= 2)
            multi.push_back(std::move(got));
    }
    // And the multi-thread pools agree among themselves exactly.
    EXPECT_EQ(multi[0], multi[1]);
}

TEST(BatchedKernels, EvaluatorBatchRoutesThroughLanes)
{
    ThreadGuard guard;
    ThreadPool::setGlobalThreads(1);
    Rng rng(21);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    Rng prng(555);

    ExactEvaluator eval(g);
    ExactEvaluator direct(g);
    // At or above the threshold the batch sweeps through lane groups;
    // below it the per-point default runs. Both are bit-identical to
    // point-at-a-time expectation, so the switch is invisible.
    for (std::size_t count : {kBatchedPointsThreshold - 1,
                              kBatchedPointsThreshold,
                              kBatchedPointsThreshold + 5}) {
        std::vector<QaoaParams> pts = mixedDepthPoints(prng, count, 0);
        std::vector<double> got = eval.batchExpectation(pts);
        ASSERT_EQ(got.size(), pts.size());
        for (std::size_t i = 0; i < pts.size(); ++i)
            EXPECT_EQ(got[i], direct.expectation(pts[i]))
                << "count=" << count << " point " << i;
    }
}

TEST(BatchedKernels, EnvOverrideAndForcePinSelection)
{
    KernelGuard kernels;
    // forceKernels pins; nullptr restores the automatic policy.
    batched::forceKernels(&batched::scalarKernels());
    EXPECT_STREQ(batched::activeKernels().name, "scalar");
    batched::forceKernels(nullptr);
    const batched::KernelOps &active = batched::activeKernels();
    if (batched::avx2Kernels())
        EXPECT_STREQ(active.name, "avx2");
    else
        EXPECT_STREQ(active.name, "scalar");
}

} // namespace
} // namespace redqaoa
