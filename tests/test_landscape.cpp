/**
 * @file
 * Landscape tooling tests, including executable versions of the paper's
 * own motivating observations: cycle graphs share landscapes (Fig 3)
 * and MSE correlates with optima displacement (Fig 7).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "landscape/landscape.hpp"

namespace redqaoa {
namespace {

TEST(Normalize, MapsToUnitInterval)
{
    auto n = normalizeValues({2.0, 4.0, 6.0});
    EXPECT_DOUBLE_EQ(n[0], 0.0);
    EXPECT_DOUBLE_EQ(n[1], 0.5);
    EXPECT_DOUBLE_EQ(n[2], 1.0);
}

TEST(Normalize, ConstantInputBecomesZero)
{
    auto n = normalizeValues({3.0, 3.0, 3.0});
    for (double v : n)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Mse, IdenticalLandscapesAreZero)
{
    std::vector<double> a{1.0, 2.0, 5.0, 3.0};
    EXPECT_DOUBLE_EQ(landscapeMse(a, a), 0.0);
}

TEST(Mse, ScaleAndShiftInvariance)
{
    // Normalization makes MSE invariant to affine transforms, which is
    // exactly why the paper can compare graphs of different sizes.
    std::vector<double> a{1.0, 2.0, 5.0, 3.0};
    std::vector<double> b;
    for (double v : a)
        b.push_back(10.0 * v - 7.0);
    EXPECT_NEAR(landscapeMse(a, b), 0.0, 1e-15);
}

TEST(Mse, OppositeLandscapes)
{
    std::vector<double> a{0.0, 1.0};
    std::vector<double> b{1.0, 0.0};
    EXPECT_DOUBLE_EQ(landscapeMse(a, b), 1.0);
}

TEST(TorusDistance, WrapsAround)
{
    LandscapePoint a{0.1, 0.05};
    LandscapePoint b{2.0 * M_PI - 0.1, M_PI - 0.05};
    // Both coordinates wrap: distance is sqrt(0.2^2 + 0.1^2).
    EXPECT_NEAR(torusDistance(a, b), std::sqrt(0.04 + 0.01), 1e-12);
}

TEST(TorusDistance, ZeroForIdenticalPoints)
{
    LandscapePoint a{1.0, 0.5};
    EXPECT_DOUBLE_EQ(torusDistance(a, a), 0.0);
}

TEST(Landscape, GridEvaluationShape)
{
    Graph g = gen::cycle(5);
    ExactEvaluator eval(g);
    Landscape ls = Landscape::evaluate(eval, 8);
    EXPECT_EQ(ls.width(), 8);
    EXPECT_EQ(ls.values().size(), 64u);
    // Grid includes gamma = beta = 0 -> uniform state energy m/2.
    EXPECT_NEAR(ls.at(0, 0), g.numEdges() / 2.0, 1e-10);
}

TEST(Landscape, OptimumIsGridMaximum)
{
    Graph g = gen::cycle(6);
    ExactEvaluator eval(g);
    Landscape ls = Landscape::evaluate(eval, 12);
    LandscapePoint opt = ls.optimum();
    QaoaParams p({opt.gamma}, {opt.beta});
    ExactEvaluator check(g);
    double best = check.expectation(p);
    for (double v : ls.values())
        EXPECT_LE(v, best + 1e-10);
}

TEST(Landscape, CycleGraphsShareLandscapes)
{
    // Fig 3: 7-node and 10-node cycles have nearly identical normalized
    // landscapes (identical subgraph structure).
    Graph c7 = gen::cycle(7);
    Graph c10 = gen::cycle(10);
    ExactEvaluator e7(c7), e10(c10);
    Landscape l7 = Landscape::evaluate(e7, 16);
    Landscape l10 = Landscape::evaluate(e10, 16);
    EXPECT_LT(landscapeMse(l7, l10), 1e-3);
}

TEST(Landscape, DifferentFamiliesDiverge)
{
    // A star and a cycle have very different landscapes.
    Graph star = gen::star(8);
    Graph ring = gen::cycle(8);
    ExactEvaluator es(star), ec(ring);
    Landscape ls = Landscape::evaluate(es, 16);
    Landscape lc = Landscape::evaluate(ec, 16);
    EXPECT_GT(landscapeMse(ls, lc), 0.01);
}

TEST(Landscape, OptimaDistanceZeroForIdenticalGraphs)
{
    Graph g = gen::cycle(6);
    ExactEvaluator a(g), b(g);
    Landscape la = Landscape::evaluate(a, 10);
    Landscape lb = Landscape::evaluate(b, 10);
    EXPECT_DOUBLE_EQ(optimaDistance(la, lb), 0.0);
}

TEST(Landscape, MseTracksOptimaDistance)
{
    // The Fig 7 premise, as a coarse property: across subgraphs of one
    // graph, low-MSE subgraphs have closer optima than high-MSE ones on
    // average (positive rank correlation).
    Rng rng(5);
    Graph g = gen::connectedGnp(9, 0.35, rng);
    ExactEvaluator base_eval(g);
    Landscape base = Landscape::evaluate(base_eval, 12);

    std::vector<double> mses, dists;
    for (int k = 4; k <= 8; ++k) {
        for (int t = 0; t < 3; ++t) {
            Subgraph s = randomConnectedSubgraph(g, k, rng);
            ExactEvaluator se(s.graph);
            Landscape ls = Landscape::evaluate(se, 12);
            mses.push_back(landscapeMse(base, ls));
            dists.push_back(optimaDistance(base, ls, 0.02));
        }
    }
    // Split by median MSE and compare mean optima distance.
    double med = stats::median(mses);
    double lo_sum = 0, hi_sum = 0;
    int lo_n = 0, hi_n = 0;
    for (std::size_t i = 0; i < mses.size(); ++i) {
        if (mses[i] <= med) {
            lo_sum += dists[i];
            ++lo_n;
        } else {
            hi_sum += dists[i];
            ++hi_n;
        }
    }
    ASSERT_GT(lo_n, 0);
    ASSERT_GT(hi_n, 0);
    EXPECT_LE(lo_sum / lo_n, hi_sum / hi_n + 0.35);
}

TEST(RandomParameterSets, ShapeAndRanges)
{
    Rng rng(6);
    auto sets = randomParameterSets(3, 50, rng);
    EXPECT_EQ(sets.size(), 50u);
    for (const auto &p : sets) {
        EXPECT_EQ(p.layers(), 3);
        for (double gm : p.gamma) {
            EXPECT_GE(gm, 0.0);
            EXPECT_LT(gm, 2.0 * M_PI);
        }
        for (double bt : p.beta) {
            EXPECT_GE(bt, 0.0);
            EXPECT_LT(bt, M_PI);
        }
    }
}

TEST(RandomParameterSets, EvaluateAtMatchesDirectCalls)
{
    Rng rng(7);
    Graph g = gen::cycle(6);
    ExactEvaluator eval(g);
    auto sets = randomParameterSets(2, 10, rng);
    auto vals = evaluateAt(eval, sets);
    ASSERT_EQ(vals.size(), 10u);
    ExactEvaluator check(g);
    for (std::size_t i = 0; i < sets.size(); ++i)
        EXPECT_DOUBLE_EQ(vals[i], check.expectation(sets[i]));
}

} // namespace
} // namespace redqaoa
