/**
 * @file
 * Thread-pool tests: range coverage, edge cases, exception propagation,
 * nesting, and — most importantly — the determinism contract: seeded
 * noisy results are identical at 1, 2, and 8 threads because RNG
 * streams are split serially before any fan-out.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/sa_reducer.hpp"
#include "graph/generators.hpp"
#include "landscape/landscape.hpp"
#include "quantum/evaluator.hpp"

namespace redqaoa {
namespace {

/** Restore the default global pool when a test returns. */
class PoolGuard
{
  public:
    ~PoolGuard() { ThreadPool::setGlobalThreads(ThreadPool::defaultThreads()); }
};

TEST(ThreadPool, CoversEveryIndexOnce)
{
    PoolGuard guard;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        parallelFor(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "i=" << i
                                         << " threads=" << threads;
    }
}

TEST(ThreadPool, ChunksPartitionTheRange)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(4);
    const std::size_t n = 237;
    std::vector<std::atomic<int>> hits(n);
    parallelForChunks(n, [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, n);
        for (std::size_t i = begin; i < end; ++i)
            ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody)
{
    PoolGuard guard;
    for (int threads : {1, 4}) {
        ThreadPool::setGlobalThreads(threads);
        bool called = false;
        parallelFor(0, [&](std::size_t) { called = true; });
        parallelForChunks(0, [&](std::size_t, std::size_t) { called = true; });
        EXPECT_FALSE(called);
    }
}

TEST(ThreadPool, SingleItemRuns)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(8);
    int calls = 0;
    parallelForChunks(1, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 1u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionPropagatesFromWorkers)
{
    PoolGuard guard;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        EXPECT_THROW(
            parallelFor(64,
                        [](std::size_t i) {
                            if (i == 13)
                                throw std::runtime_error("boom");
                        }),
            std::runtime_error)
            << "threads=" << threads;
    }
}

TEST(ThreadPool, LowestChunkExceptionWins)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(8);
    // Two throwing indices; the surfaced message must be the lower
    // chunk's regardless of scheduling.
    for (int repeat = 0; repeat < 8; ++repeat) {
        try {
            parallelFor(
                256,
                [](std::size_t i) {
                    if (i == 3)
                        throw std::runtime_error("low");
                    if (i == 255)
                        throw std::runtime_error("high");
                },
                1);
            FAIL() << "expected throw";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "low");
        }
    }
}

TEST(ThreadPool, PoolUsableAfterException)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(4);
    EXPECT_THROW(parallelFor(8, [](std::size_t) {
                     throw std::runtime_error("boom");
                 }),
                 std::runtime_error);
    std::atomic<int> sum{0};
    parallelFor(100, [&](std::size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(4);
    std::vector<std::atomic<int>> hits(64);
    parallelFor(8, [&](std::size_t outer) {
        parallelFor(8, [&](std::size_t inner) {
            ++hits[outer * 8 + inner];
        });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SetGlobalThreadsTakesEffect)
{
    PoolGuard guard;
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 3);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 1);
}

TEST(ThreadPool, EnvOverrideControlsDefault)
{
    PoolGuard guard;
    ASSERT_EQ(setenv("REDQAOA_THREADS", "5", 1), 0);
    EXPECT_EQ(ThreadPool::defaultThreads(), 5);
    ASSERT_EQ(setenv("REDQAOA_THREADS", "0", 1), 0);
    EXPECT_GE(ThreadPool::defaultThreads(), 1); // Invalid -> hardware.
    ASSERT_EQ(unsetenv("REDQAOA_THREADS"), 0);
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(Rng, SplitNMatchesSequentialSplit)
{
    Rng a(77), b(77);
    auto streams = a.splitN(10);
    ASSERT_EQ(streams.size(), 10u);
    for (std::size_t i = 0; i < streams.size(); ++i) {
        Rng child = b.split();
        for (int d = 0; d < 16; ++d)
            EXPECT_EQ(streams[i].next(), child.next());
    }
    // Parent streams advanced identically.
    EXPECT_EQ(a.next(), b.next());
}

/** Seeded noisy landscape values for a given thread count. */
std::vector<double>
noisyLandscapeAt(int threads, int shots)
{
    ThreadPool::setGlobalThreads(threads);
    Rng grng(3);
    Graph g = gen::erdosRenyiGnp(8, 0.5, grng);
    NoiseModel nm = noise::transpiled(noise::ibmGuadalupe(), g.numNodes());
    NoisyEvaluator noisy(g, nm, 10, 2024, shots);
    return Landscape::evaluate(noisy, 8).values();
}

TEST(Determinism, NoisyLandscapeIdenticalAt1_2_8Threads)
{
    PoolGuard guard;
    auto v1 = noisyLandscapeAt(1, 0);
    auto v2 = noisyLandscapeAt(2, 0);
    auto v8 = noisyLandscapeAt(8, 0);
    ASSERT_EQ(v1.size(), v2.size());
    ASSERT_EQ(v1.size(), v8.size());
    for (std::size_t i = 0; i < v1.size(); ++i) {
        // Bit-exact, not approximately equal: the RNG pre-split plus
        // in-order reduction make the fan-out scheduling invisible.
        EXPECT_EQ(v1[i], v2[i]) << "cell " << i;
        EXPECT_EQ(v1[i], v8[i]) << "cell " << i;
    }
}

TEST(Determinism, SampledNoisyLandscapeIdenticalAcrossThreads)
{
    PoolGuard guard;
    auto v1 = noisyLandscapeAt(1, 256);
    auto v8 = noisyLandscapeAt(8, 256);
    ASSERT_EQ(v1.size(), v8.size());
    for (std::size_t i = 0; i < v1.size(); ++i)
        EXPECT_EQ(v1[i], v8[i]) << "cell " << i;
}

TEST(Determinism, TrajectoryExpectationIdenticalAcrossThreads)
{
    PoolGuard guard;
    Rng grng(5);
    Graph g = gen::erdosRenyiGnp(9, 0.4, grng);
    NoiseModel nm = noise::transpiled(noise::ibmMelbourne(), g.numNodes());
    QaoaParams p({0.9}, {0.4});
    std::vector<double> vals;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        TrajectorySimulator sim(g, nm, 12, 777);
        vals.push_back(sim.expectation(p));
    }
    EXPECT_EQ(vals[0], vals[1]);
    EXPECT_EQ(vals[0], vals[2]);
}

TEST(Determinism, BatchExpectationMatchesSerialLoop)
{
    PoolGuard guard;
    Rng grng(6);
    Graph g = gen::erdosRenyiGnp(8, 0.5, grng);
    NoiseModel nm = noise::transpiled(noise::ibmKolkata(), g.numNodes());
    Rng prng(41);
    auto sets = randomParameterSets(1, 24, prng);

    ThreadPool::setGlobalThreads(1);
    TrajectorySimulator serial(g, nm, 8, 515);
    std::vector<double> expect;
    for (const QaoaParams &p : sets)
        expect.push_back(serial.expectation(p));

    ThreadPool::setGlobalThreads(8);
    TrajectorySimulator batched(g, nm, 8, 515);
    auto got = batched.batchExpectation(sets);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "point " << i;
}

TEST(Determinism, SaReducerDefaultChainIgnoresThreadCount)
{
    // With parallelCandidates off (the default) the annealing chain is
    // the historical serial one at every pool size, so results never
    // depend on the host machine's core count.
    PoolGuard guard;
    Rng grng(8);
    Graph g = gen::erdosRenyiGnp(16, 0.35, grng);
    std::vector<std::vector<Node>> members;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        Rng rng(123);
        SaReducer reducer;
        SaResult res = reducer.reduce(g, 8, rng);
        members.push_back(res.subgraph.toOriginal);
    }
    EXPECT_EQ(members[0], members[1]);
    EXPECT_EQ(members[0], members[2]);
}

TEST(Determinism, SaReducerParallelCandidatesIdenticalAcrossThreadCounts)
{
    PoolGuard guard;
    Rng grng(8);
    Graph g = gen::erdosRenyiGnp(16, 0.35, grng);
    SaOptions opts;
    opts.parallelCandidates = true;
    std::vector<std::vector<Node>> members;
    for (int threads : {2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        Rng rng(123);
        SaReducer reducer(opts);
        SaResult res = reducer.reduce(g, 8, rng);
        members.push_back(res.subgraph.toOriginal);
    }
    EXPECT_EQ(members[0], members[1]);
}

TEST(Determinism, LightconeIdenticalAcrossMultiThreadCounts)
{
    PoolGuard guard;
    Rng grng(12);
    Graph g = gen::randomRegular(30, 3, grng);
    QaoaParams p({0.4, 0.2}, {0.3, 0.1});
    std::vector<double> vals;
    for (int threads : {2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        LightconeEvaluator lc(g, 2, 14);
        vals.push_back(lc.expectation(p));
    }
    EXPECT_EQ(vals[0], vals[1]);
}

} // namespace
} // namespace redqaoa
