/**
 * @file
 * Circuit IR, QAOA builder, topology, timing, and throughput-model
 * tests. A key cross-check: the gate-list QAOA circuit executed on the
 * statevector simulator must reproduce the fast-path QAOA energies.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "circuit/qaoa_builder.hpp"
#include "circuit/throughput.hpp"
#include "circuit/timing.hpp"
#include "circuit/topologies.hpp"
#include "graph/generators.hpp"
#include "quantum/maxcut.hpp"
#include "quantum/statevector.hpp"

namespace redqaoa {
namespace {

TEST(Circuit, CountsAndDepth)
{
    Circuit c(3);
    c.addH(0);
    c.addH(1);
    c.addCnot(0, 1);
    c.addRx(2, 0.5);
    c.addCnot(1, 2);
    EXPECT_EQ(c.count(GateKind::H), 2);
    EXPECT_EQ(c.twoQubitCount(), 2);
    // H(0) | H(1),Rx(2) happen at level 1; CNOT(0,1) at 2; CNOT(1,2) at 3.
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, DecomposeRzzAndSwap)
{
    Circuit c(2);
    c.addRzz(0, 1, 0.3);
    c.addSwap(0, 1);
    Circuit hw = c.decomposed();
    EXPECT_EQ(hw.count(GateKind::RZZ), 0);
    EXPECT_EQ(hw.count(GateKind::SWAP), 0);
    EXPECT_EQ(hw.count(GateKind::CNOT), 5);
    EXPECT_EQ(hw.count(GateKind::RZ), 1);
}

TEST(QaoaBuilder, GateInventory)
{
    Rng rng(1);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    QaoaParams p = QaoaParams::random(2, rng);
    Circuit c = buildQaoaCircuit(g, p, true);
    EXPECT_EQ(c.count(GateKind::H), 6);
    EXPECT_EQ(c.count(GateKind::RZZ), 2 * g.numEdges());
    EXPECT_EQ(c.count(GateKind::RX), 12);
    EXPECT_EQ(c.count(GateKind::MEASURE), 6);
}

TEST(QaoaBuilder, CircuitMatchesFastPathSimulation)
{
    // Execute the gate list on a fresh statevector and compare <H_c>
    // against the fast-path QaoaSimulator.
    Rng rng(2);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    QaoaParams p = QaoaParams::random(2, rng);
    Circuit c = buildQaoaCircuit(g, p, false);

    Statevector psi(6);
    for (const GateOp &op : c.gates()) {
        switch (op.kind) {
          case GateKind::H:
            psi.applyH(op.q0);
            break;
          case GateKind::RX:
            psi.applyRx(op.q0, op.angle);
            break;
          case GateKind::RZ:
            psi.applyRz(op.q0, op.angle);
            break;
          case GateKind::CNOT:
            psi.applyCnot(op.q0, op.q1);
            break;
          case GateKind::RZZ:
            psi.applyRzz(op.q0, op.q1, op.angle);
            break;
          default:
            break;
        }
    }
    double e = 0.0;
    for (const Edge &edge : g.edges())
        e += 0.5 * (1.0 - psi.zzExpectation(edge.u, edge.v));

    QaoaSimulator sim(g);
    EXPECT_NEAR(e, sim.expectation(p), 1e-9);
}

TEST(Topologies, DeviceSizes)
{
    EXPECT_EQ(topologies::falcon27().numQubits(), 27);
    EXPECT_EQ(topologies::eagle33().numQubits(), 33);
    EXPECT_EQ(topologies::hummingbird65().numQubits(), 65);
    EXPECT_EQ(topologies::eagle127().numQubits(), 127);
    EXPECT_EQ(topologies::aspenM3().numQubits(), 79);
    EXPECT_EQ(topologies::fig25Devices().size(), 4u);
}

TEST(Topologies, DevicesAreConnected)
{
    for (const auto &dev : topologies::fig25Devices())
        EXPECT_TRUE(dev.graph().isConnected()) << dev.name();
    EXPECT_TRUE(topologies::aspenM3().graph().isConnected());
}

TEST(Topologies, HeavyHexDegreeBound)
{
    // Heavy-hex lattices keep qubit degree <= 3 (bridge qubits degree 2).
    for (const auto &dev : topologies::fig25Devices())
        EXPECT_LE(dev.graph().maxDegree(), 3) << dev.name();
}

TEST(Topologies, DistancesAreMetric)
{
    CouplingMap dev = topologies::falcon27();
    for (int a = 0; a < 27; ++a) {
        EXPECT_EQ(dev.distance(a, a), 0);
        for (int b = 0; b < 27; ++b) {
            EXPECT_EQ(dev.distance(a, b), dev.distance(b, a));
            if (dev.coupled(a, b)) {
                EXPECT_EQ(dev.distance(a, b), 1);
            }
        }
    }
}

TEST(Timing, LatencyScalesWithDepth)
{
    TimingModel tm;
    Rng rng(3);
    Graph small = gen::cycle(4);
    Graph big = gen::complete(8);
    QaoaParams p({0.4}, {0.3});
    double t_small = tm.circuitLatency(buildQaoaCircuit(small, p, true));
    double t_big = tm.circuitLatency(buildQaoaCircuit(big, p, true));
    EXPECT_GT(t_big, t_small);
    EXPECT_GT(t_small, 0.0);
}

TEST(Timing, SherbrookeAnchorIsClose)
{
    // §6.4.2: a 10-node 1-layer QAOA circuit takes ~4.2 s on
    // ibm_sherbrooke at 8192 shots. The default timing model should
    // land within a factor of ~1.5 of that anchor.
    Rng rng(4);
    Graph g = gen::connectedGnp(10, 0.4, rng);
    QaoaParams p({0.7}, {0.3});
    TimingModel tm;
    double secs = tm.jobDuration(buildQaoaCircuit(g, p, true), 8192);
    EXPECT_GT(secs, 4.2 / 1.5);
    EXPECT_LT(secs, 4.2 * 1.5);
}

TEST(Throughput, PackerCountsDisjointRegions)
{
    CouplingMap dev = topologies::falcon27();
    ThroughputModel model(dev);
    EXPECT_EQ(model.packRegions(27), 1);
    EXPECT_GE(model.packRegions(10), 2);
    EXPECT_GE(model.packRegions(5), 4);
    EXPECT_EQ(model.packRegions(28), 0);
}

TEST(Throughput, SmallerCircuitsGetMoreCopies)
{
    CouplingMap dev = topologies::hummingbird65();
    ThroughputModel model(dev);
    int big = model.packRegions(20);
    int small = model.packRegions(8);
    EXPECT_GT(small, big);
}

TEST(Throughput, ReducedGraphImprovesJobsPerSecond)
{
    // The Fig 25 effect in miniature: a 7-node circuit on falcon-27
    // beats a 10-node circuit in jobs/second.
    Rng rng(5);
    Graph big = gen::connectedGnp(10, 0.45, rng);
    Graph small = gen::connectedGnp(7, 0.5, rng);
    QaoaParams p({0.7}, {0.3});
    CouplingMap dev = topologies::falcon27();
    ThroughputModel model(dev, TimingModel{}, 1024, 2);
    Rng r1(6), r2(7);
    auto rep_big = model.evaluate(big, p, r1);
    auto rep_small = model.evaluate(small, p, r2);
    EXPECT_GT(rep_small.jobsPerSecond, rep_big.jobsPerSecond);
}

TEST(GateNames, Mnemonics)
{
    EXPECT_EQ(gateName(GateKind::H), "h");
    EXPECT_EQ(gateName(GateKind::CNOT), "cx");
    EXPECT_EQ(gateName(GateKind::RZZ), "rzz");
    EXPECT_TRUE(isTwoQubit(GateKind::SWAP));
    EXPECT_FALSE(isTwoQubit(GateKind::MEASURE));
}

} // namespace
} // namespace redqaoa
