/**
 * @file
 * Statevector simulator unit tests: gate algebra against hand-computed
 * amplitudes, unitarity, fast-path equivalences, and sampling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/statevector.hpp"

namespace redqaoa {
namespace {

constexpr double kTol = 1e-12;

TEST(Statevector, InitialStateIsZeroKet)
{
    Statevector s(3);
    EXPECT_EQ(s.dim(), 8u);
    EXPECT_NEAR(std::abs(s[0]), 1.0, kTol);
    for (std::size_t i = 1; i < s.dim(); ++i)
        EXPECT_NEAR(std::abs(s[i]), 0.0, kTol);
}

TEST(Statevector, UniformStateHasEqualAmplitudes)
{
    Statevector s = Statevector::uniform(4);
    double expect = 1.0 / 4.0;
    for (std::size_t i = 0; i < s.dim(); ++i) {
        EXPECT_NEAR(s[i].real(), expect, kTol);
        EXPECT_NEAR(s[i].imag(), 0.0, kTol);
    }
}

TEST(Statevector, HadamardCreatesSuperposition)
{
    Statevector s(1);
    s.applyH(0);
    double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(s[0].real(), r, kTol);
    EXPECT_NEAR(s[1].real(), r, kTol);
}

TEST(Statevector, HadamardIsInvolution)
{
    Statevector s(2);
    s.applyH(0);
    s.applyH(1);
    s.applyH(0);
    s.applyH(1);
    EXPECT_NEAR(std::abs(s[0]), 1.0, kTol);
}

TEST(Statevector, PauliXFlipsBit)
{
    Statevector s(2);
    s.applyX(1);
    EXPECT_NEAR(std::abs(s[2]), 1.0, kTol); // |10>.
}

TEST(Statevector, PauliYOnZero)
{
    Statevector s(1);
    s.applyY(0);
    // Y|0> = i|1>.
    EXPECT_NEAR(s[1].imag(), 1.0, kTol);
    EXPECT_NEAR(s[1].real(), 0.0, kTol);
}

TEST(Statevector, PauliZFlipsPhaseOfOne)
{
    Statevector s(1);
    s.applyX(0);
    s.applyZ(0);
    EXPECT_NEAR(s[1].real(), -1.0, kTol);
}

TEST(Statevector, XYZAnticommutation)
{
    // XZ = -ZX on an arbitrary state.
    Statevector a(1), b(1);
    a.applyH(0);
    b.applyH(0);
    a.applyX(0);
    a.applyZ(0);
    b.applyZ(0);
    b.applyX(0);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(a[i].real(), -b[i].real(), kTol);
        EXPECT_NEAR(a[i].imag(), -b[i].imag(), kTol);
    }
}

TEST(Statevector, RxRotatesBetweenBasisStates)
{
    Statevector s(1);
    s.applyRx(0, M_PI); // RX(pi)|0> = -i|1>.
    EXPECT_NEAR(std::abs(s[0]), 0.0, kTol);
    EXPECT_NEAR(s[1].imag(), -1.0, kTol);
}

TEST(Statevector, RxHalfPi)
{
    Statevector s(1);
    s.applyRx(0, M_PI / 2.0);
    double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(s[0].real(), r, kTol);
    EXPECT_NEAR(s[1].imag(), -r, kTol);
}

TEST(Statevector, RzAppliesOppositePhases)
{
    Statevector s(1);
    s.applyH(0);
    s.applyRz(0, M_PI / 2.0);
    // exp(-i pi/4)/sqrt2, exp(+i pi/4)/sqrt2.
    double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(s[0].real(), r * std::cos(M_PI / 4.0), kTol);
    EXPECT_NEAR(s[0].imag(), -r * std::sin(M_PI / 4.0), kTol);
    EXPECT_NEAR(s[1].imag(), r * std::sin(M_PI / 4.0), kTol);
}

TEST(Statevector, CnotEntangles)
{
    Statevector s(2);
    s.applyH(0);
    s.applyCnot(0, 1);
    // Bell state (|00> + |11>)/sqrt2.
    double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(s[0].real(), r, kTol);
    EXPECT_NEAR(s[3].real(), r, kTol);
    EXPECT_NEAR(std::abs(s[1]), 0.0, kTol);
    EXPECT_NEAR(std::abs(s[2]), 0.0, kTol);
}

TEST(Statevector, RzzMatchesCnotRzCnotDecomposition)
{
    double theta = 0.77;
    Statevector a = Statevector::uniform(3);
    Statevector b = Statevector::uniform(3);
    a.applyRzz(0, 2, theta);
    b.applyCnot(0, 2);
    b.applyRz(2, theta);
    b.applyCnot(0, 2);
    for (std::size_t i = 0; i < a.dim(); ++i) {
        EXPECT_NEAR(a[i].real(), b[i].real(), kTol);
        EXPECT_NEAR(a[i].imag(), b[i].imag(), kTol);
    }
}

TEST(Statevector, DiagonalPhaseMatchesPerEdgeRzz)
{
    // exp(-i g * cut) over edges == product of RZZ(-g) up to global phase.
    // Use a 3-path: edges (0,1), (1,2).
    std::vector<double> diag(8, 0.0);
    auto parity = [](std::size_t z, int a, int b) {
        return (((z >> a) ^ (z >> b)) & 1u) != 0u;
    };
    for (std::size_t z = 0; z < 8; ++z)
        diag[z] = (parity(z, 0, 1) ? 1.0 : 0.0) +
                  (parity(z, 1, 2) ? 1.0 : 0.0);
    double g = 0.31;
    Statevector a = Statevector::uniform(3);
    Statevector b = Statevector::uniform(3);
    a.applyDiagonalPhase(diag, g);
    b.applyRzz(0, 1, -g);
    b.applyRzz(1, 2, -g);
    // Compare up to global phase: use amplitude ratios against index 0.
    Complex phase = a[0] / b[0];
    for (std::size_t i = 0; i < a.dim(); ++i) {
        Complex scaled = b[i] * phase;
        EXPECT_NEAR(a[i].real(), scaled.real(), 1e-10);
        EXPECT_NEAR(a[i].imag(), scaled.imag(), 1e-10);
    }
}

TEST(Statevector, NormPreservedByGateSequences)
{
    Statevector s = Statevector::uniform(5);
    s.applyRx(2, 0.3);
    s.applyRz(4, 1.1);
    s.applyCnot(0, 3);
    s.applyRzz(1, 4, 0.9);
    s.applyH(2);
    s.applyY(0);
    EXPECT_NEAR(s.norm2(), 1.0, 1e-10);
}

TEST(Statevector, ZzExpectationOnProductStates)
{
    Statevector s(2); // |00>: both +1 eigenstates.
    EXPECT_NEAR(s.zzExpectation(0, 1), 1.0, kTol);
    s.applyX(0); // |01>: opposite.
    EXPECT_NEAR(s.zzExpectation(0, 1), -1.0, kTol);
}

TEST(Statevector, ZzExpectationOnUniformIsZero)
{
    Statevector s = Statevector::uniform(3);
    EXPECT_NEAR(s.zzExpectation(0, 2), 0.0, kTol);
}

TEST(Statevector, SamplingMatchesDistribution)
{
    Statevector s(2);
    s.applyH(0); // (|00> + |01>)/sqrt2: outcomes 0 and 1 only.
    Rng rng(5);
    auto shots = s.sample(4000, rng);
    int zero = 0, one = 0;
    for (auto z : shots) {
        ASSERT_LT(z, 2u);
        if (z == 0)
            ++zero;
        else
            ++one;
    }
    EXPECT_NEAR(static_cast<double>(zero) / 4000.0, 0.5, 0.05);
    EXPECT_NEAR(static_cast<double>(one) / 4000.0, 0.5, 0.05);
}

TEST(Statevector, ApplyRxAllMatchesPerQubit)
{
    Statevector a = Statevector::uniform(4);
    Statevector b = Statevector::uniform(4);
    a.applyRxAll(0.7);
    for (int q = 0; q < 4; ++q)
        b.applyRx(q, 0.7);
    for (std::size_t i = 0; i < a.dim(); ++i)
        EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, kTol);
}

/** Probabilities sum to one after arbitrary circuits (property sweep). */
class StatevectorNorm : public ::testing::TestWithParam<int>
{};

TEST_P(StatevectorNorm, RandomCircuitPreservesNorm)
{
    int seed = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    int n = 2 + static_cast<int>(rng.index(4));
    Statevector s = Statevector::uniform(n);
    for (int step = 0; step < 30; ++step) {
        int q = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
        switch (rng.index(6)) {
          case 0:
            s.applyH(q);
            break;
          case 1:
            s.applyRx(q, rng.uniform(0, 6.28));
            break;
          case 2:
            s.applyRz(q, rng.uniform(0, 6.28));
            break;
          case 3:
            s.applyY(q);
            break;
          case 4: {
            int t = (q + 1) % n;
            s.applyCnot(q, t);
            break;
          }
          default: {
            int t = (q + 1) % n;
            s.applyRzz(q, t, rng.uniform(0, 6.28));
            break;
          }
        }
    }
    EXPECT_NEAR(s.norm2(), 1.0, 1e-9);
    double total = 0.0;
    for (double p : s.probabilities())
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatevectorNorm,
                         ::testing::Range(0, 12));

} // namespace
} // namespace redqaoa
