/**
 * @file
 * INTERP layer-growing tests: the interpolation rule's algebra, and the
 * layerwise driver's monotone improvement across depths.
 */

#include <gtest/gtest.h>

#include "core/layerwise.hpp"
#include "graph/generators.hpp"

namespace redqaoa {
namespace {

TEST(Interp, DepthOneToTwo)
{
    QaoaParams p1({1.0}, {0.5});
    QaoaParams p2 = interpExtend(p1);
    ASSERT_EQ(p2.layers(), 2);
    // i = 0 (0-indexed): w = 0 -> right value; i = 1: w = 1/1... the
    // endpoints stretch the single-layer schedule.
    EXPECT_DOUBLE_EQ(p2.gamma[0], 1.0);
    EXPECT_DOUBLE_EQ(p2.gamma[1], 1.0);
    EXPECT_DOUBLE_EQ(p2.beta[0], 0.5);
    EXPECT_DOUBLE_EQ(p2.beta[1], 0.5);
}

TEST(Interp, PreservesMonotoneSchedules)
{
    // A linear ramp stays a ramp under INTERP.
    QaoaParams p3({0.2, 0.4, 0.6}, {0.6, 0.4, 0.2});
    QaoaParams p4 = interpExtend(p3);
    ASSERT_EQ(p4.layers(), 4);
    for (int i = 0; i + 1 < 4; ++i) {
        EXPECT_LE(p4.gamma[static_cast<std::size_t>(i)],
                  p4.gamma[static_cast<std::size_t>(i) + 1] + 1e-12);
        EXPECT_GE(p4.beta[static_cast<std::size_t>(i)],
                  p4.beta[static_cast<std::size_t>(i) + 1] - 1e-12);
    }
}

TEST(Interp, BoundaryWeights)
{
    QaoaParams p2({0.3, 0.9}, {0.8, 0.2});
    QaoaParams p3 = interpExtend(p2);
    ASSERT_EQ(p3.layers(), 3);
    // First entry keeps the first old value (w = 0).
    EXPECT_DOUBLE_EQ(p3.gamma[0], 0.3);
    // Middle: (1/2) * old[0] + (1/2) * old[1].
    EXPECT_DOUBLE_EQ(p3.gamma[1], 0.5 * 0.3 + 0.5 * 0.9);
    // Last: w = 1 -> old last value.
    EXPECT_DOUBLE_EQ(p3.gamma[2], 0.9);
}

TEST(Layerwise, EnergyImprovesWithDepth)
{
    Rng rng(3);
    Graph g = gen::cycle(8); // p=1 cannot saturate an even cycle.
    ExactEvaluator eval(g);
    LayerwiseOptions opts;
    opts.targetLayers = 3;
    opts.evaluationsPerDepth = 80;
    LayerwiseResult res = optimizeLayerwise(eval, opts, rng);

    ASSERT_EQ(res.perDepthEnergy.size(), 3u);
    // Deeper depths should not be (meaningfully) worse.
    EXPECT_GE(res.perDepthEnergy[1], res.perDepthEnergy[0] - 0.05);
    EXPECT_GE(res.perDepthEnergy[2], res.perDepthEnergy[1] - 0.05);
    EXPECT_EQ(res.params.layers(), 3);
    EXPECT_GT(res.energy, 0.6 * 8); // Well above random guessing.
}

TEST(Layerwise, SingleDepthDegeneratesToRestarts)
{
    Rng rng(4);
    Graph g = gen::connectedGnp(7, 0.5, rng);
    ExactEvaluator eval(g);
    LayerwiseOptions opts;
    opts.targetLayers = 1;
    opts.evaluationsPerDepth = 50;
    LayerwiseResult res = optimizeLayerwise(eval, opts, rng);
    EXPECT_EQ(res.params.layers(), 1);
    EXPECT_EQ(res.perDepthEnergy.size(), 1u);
}

TEST(Layerwise, EvaluationAccountingIsComplete)
{
    Rng rng(5);
    Graph g = gen::connectedGnp(6, 0.5, rng);
    ExactEvaluator eval(g);
    LayerwiseOptions opts;
    opts.targetLayers = 2;
    opts.evaluationsPerDepth = 30;
    opts.firstDepthRestarts = 2;
    LayerwiseResult res = optimizeLayerwise(eval, opts, rng);
    EXPECT_GT(res.evaluations, 0);
    EXPECT_LE(res.evaluations, 30 * 3 + 10);
}

} // namespace
} // namespace redqaoa
