/**
 * @file
 * FaultPlane contracts: schedule grammar, deterministic replay, rule
 * ordering, probe ineligibility, and the disabled plane's inertness.
 * The transport-level consequences of each FaultKind (resets, torn
 * frames, bounces, aborts) are pinned end-to-end by the chaos
 * sections of tests/test_service.cpp and scripts/chaos_smoke.sh; this
 * suite pins the plane itself, so a chaos failure always bisects to
 * either the schedule or the transport.
 */

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/fault_injection.hpp"

using namespace redqaoa;
using namespace redqaoa::service;

namespace {

/** The first @p count actions of a plane configured with @p spec. */
std::vector<FaultKind>
schedule(const std::string &spec, int count)
{
    FaultPlane plane(spec);
    std::vector<FaultKind> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        out.push_back(plane.onRequest().kind);
    return out;
}

} // namespace

TEST(FaultPlaneTest, DisabledPlaneIsInert)
{
    FaultPlane plane;
    EXPECT_FALSE(plane.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(plane.onRequest().kind, FaultKind::None);
    // A disabled plane must not even account requests: enabled() is
    // the only state it touches, so the fault-free request path is
    // bitwise identical to a build without the plane.
    EXPECT_EQ(plane.requestCount(), 0u);
    EXPECT_EQ(plane.injectedCount(), 0u);
}

TEST(FaultPlaneTest, EmptySpecDisarms)
{
    FaultPlane plane("overload@1");
    EXPECT_TRUE(plane.enabled());
    plane.configure("");
    EXPECT_FALSE(plane.enabled());
    EXPECT_EQ(plane.onRequest().kind, FaultKind::None);
}

TEST(FaultPlaneTest, CountRuleFiresExactlyOnce)
{
    FaultPlane plane("overload@3");
    std::vector<FaultKind> kinds;
    for (int i = 0; i < 6; ++i)
        kinds.push_back(plane.onRequest().kind);
    const std::vector<FaultKind> want = {
        FaultKind::None,     FaultKind::None, FaultKind::Overload,
        FaultKind::None,     FaultKind::None, FaultKind::None,
    };
    EXPECT_EQ(kinds, want);
    EXPECT_EQ(plane.requestCount(), 6u);
    EXPECT_EQ(plane.injectedCount(), 1u);
    EXPECT_EQ(plane.injectedCount(FaultKind::Overload), 1u);
}

TEST(FaultPlaneTest, PeriodicRuleFiresAtPhaseAndPeriod)
{
    FaultPlane plane("reset@2/3");
    std::vector<int> fired;
    for (int i = 1; i <= 10; ++i)
        if (plane.onRequest().kind == FaultKind::Reset)
            fired.push_back(i);
    EXPECT_EQ(fired, (std::vector<int>{2, 5, 8}));
}

TEST(FaultPlaneTest, DelayCarriesItsMilliseconds)
{
    FaultPlane plane("delay:75@2");
    EXPECT_EQ(plane.onRequest().kind, FaultKind::None);
    FaultAction action = plane.onRequest();
    EXPECT_EQ(action.kind, FaultKind::Delay);
    EXPECT_DOUBLE_EQ(action.delayMs, 75.0);
}

TEST(FaultPlaneTest, FirstMatchingRuleWins)
{
    // Both rules trigger at request 2; schedule order decides.
    FaultPlane plane("overload@2;reset@2");
    plane.onRequest();
    EXPECT_EQ(plane.onRequest().kind, FaultKind::Overload);
    EXPECT_EQ(plane.injectedCount(FaultKind::Reset), 0u);
}

TEST(FaultPlaneTest, ProbabilisticScheduleIsSeedDeterministic)
{
    const std::string spec = "seed=42;overload~0.25";
    const std::vector<FaultKind> a = schedule(spec, 1000);
    const std::vector<FaultKind> b = schedule(spec, 1000);
    EXPECT_EQ(a, b); // Same seed, same spec -> same schedule.

    int fired = 0;
    for (FaultKind kind : a)
        fired += kind == FaultKind::Overload ? 1 : 0;
    EXPECT_GT(fired, 150); // ~250 expected; loose statistical bounds.
    EXPECT_LT(fired, 350);

    const std::vector<FaultKind> c =
        schedule("seed=43;overload~0.25", 1000);
    EXPECT_NE(a, c); // Different seed, different schedule.
}

TEST(FaultPlaneTest, ReconfigureReplaysTheSchedule)
{
    FaultPlane plane("seed=7;reset~0.5;overload@4");
    std::vector<FaultKind> first;
    for (int i = 0; i < 50; ++i)
        first.push_back(plane.onRequest().kind);
    plane.configure("seed=7;reset~0.5;overload@4");
    std::vector<FaultKind> second;
    for (int i = 0; i < 50; ++i)
        second.push_back(plane.onRequest().kind);
    EXPECT_EQ(first, second);
}

TEST(FaultPlaneTest, WhitespaceIsIgnored)
{
    FaultPlane plane(" overload @ 2 ;  reset @ 4 ");
    EXPECT_EQ(plane.onRequest().kind, FaultKind::None);
    EXPECT_EQ(plane.onRequest().kind, FaultKind::Overload);
    EXPECT_EQ(plane.onRequest().kind, FaultKind::None);
    EXPECT_EQ(plane.onRequest().kind, FaultKind::Reset);
}

TEST(FaultPlaneTest, BadSpecsThrowAndLeaveThePlaneUnchanged)
{
    const char *bad[] = {
        "explode@3",       // Unknown kind.
        "reset",           // No trigger.
        "reset@0",         // Count must be >= 1.
        "reset@x",         // Count must be an integer.
        "reset@3/0",       // Period must be >= 1.
        "overload~0",      // Probability in (0, 1].
        "overload~1.5",    // Probability in (0, 1].
        "reset:10@3",      // Only delay takes an argument.
        "delay@3",         // Delay needs its argument.
        "seed=abc;reset@1" // Seed must be an unsigned integer.
    };
    FaultPlane plane("overload@1");
    for (const char *spec : bad) {
        EXPECT_THROW(plane.configure(spec), std::invalid_argument)
            << "spec: " << spec;
    }
    // The failed configures left the original schedule armed.
    EXPECT_TRUE(plane.enabled());
    EXPECT_EQ(plane.onRequest().kind, FaultKind::Overload);
}

TEST(FaultPlaneTest, ProbesAreNeverEligible)
{
    // Liveness probes must not perturb deterministic schedules: a
    // worker kill count that depended on supervisor probe timing
    // would make chaos runs unreproducible.
    EXPECT_FALSE(FaultPlane::methodEligible("health"));
    EXPECT_FALSE(FaultPlane::methodEligible("hello"));
    EXPECT_FALSE(FaultPlane::methodEligible("shutdown"));
    EXPECT_TRUE(FaultPlane::methodEligible("evaluate"));
    EXPECT_TRUE(FaultPlane::methodEligible("stats"));
    EXPECT_TRUE(FaultPlane::methodEligible("")); // Unparseable lines.
}

TEST(FaultPlaneTest, StatsJsonReportsInjections)
{
    FaultPlane plane("overload@1;reset@2");
    plane.onRequest();
    plane.onRequest();
    plane.onRequest();
    json::Value doc = plane.statsJson();
    EXPECT_TRUE(doc.find("enabled")->asBool());
    EXPECT_EQ(doc.find("requests")->asNumber(), 3.0);
    const json::Value &injected = *doc.find("injected");
    EXPECT_EQ(injected.find("total")->asNumber(), 2.0);
    EXPECT_EQ(injected.find("overload")->asNumber(), 1.0);
    EXPECT_EQ(injected.find("reset")->asNumber(), 1.0);
    EXPECT_EQ(injected.find("abort")->asNumber(), 0.0);
}

TEST(FaultPlaneTest, KindNamesAreStable)
{
    // chaos_smoke.sh greps these names out of health documents.
    EXPECT_STREQ(faultKindName(FaultKind::Reset), "reset");
    EXPECT_STREQ(faultKindName(FaultKind::Delay), "delay");
    EXPECT_STREQ(faultKindName(FaultKind::Truncate), "truncate");
    EXPECT_STREQ(faultKindName(FaultKind::Abort), "abort");
    EXPECT_STREQ(faultKindName(FaultKind::Overload), "overload");
    EXPECT_EQ(kFaultAbortExitStatus, 70);
}
