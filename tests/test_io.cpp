/**
 * @file
 * Graph I/O tests: round trips, format tolerance, and malformed-input
 * rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace redqaoa {
namespace {

TEST(GraphIo, ParsesDimacsStyle)
{
    Graph g = io::readEdgeListString("p 4\ne 0 1\ne 1 2\ne 2 3\n");
    EXPECT_EQ(g.numNodes(), 4);
    EXPECT_EQ(g.numEdges(), 3);
    EXPECT_TRUE(g.hasEdge(1, 2));
}

TEST(GraphIo, ParsesBarePairs)
{
    Graph g = io::readEdgeListString("0 1\n1 2\n0 2\n");
    EXPECT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.numEdges(), 3);
}

TEST(GraphIo, IgnoresCommentsAndBlankLines)
{
    Graph g = io::readEdgeListString(
        "# a molecule\n\np 3  # three atoms\ne 0 1\n# bond two\ne 1 2\n");
    EXPECT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.numEdges(), 2);
}

TEST(GraphIo, DeclaredIsolatedNodesSurvive)
{
    Graph g = io::readEdgeListString("p 6\ne 0 1\n");
    EXPECT_EQ(g.numNodes(), 6);
    EXPECT_EQ(g.degree(5), 0);
}

TEST(GraphIo, DuplicateEdgesCollapse)
{
    Graph g = io::readEdgeListString("e 0 1\ne 1 0\ne 0 1\n");
    EXPECT_EQ(g.numEdges(), 1);
}

TEST(GraphIo, RejectsMalformedInput)
{
    EXPECT_THROW(io::readEdgeListString("e 0\n"), std::runtime_error);
    EXPECT_THROW(io::readEdgeListString("e 0 x\n"), std::runtime_error);
    EXPECT_THROW(io::readEdgeListString("banana\n"), std::runtime_error);
    EXPECT_THROW(io::readEdgeListString("e 0 1 2\n"), std::runtime_error);
    EXPECT_THROW(io::readEdgeListString("p 2\ne 0 5\n"),
                 std::runtime_error);
    EXPECT_THROW(io::readEdgeListString("p 2\np 3\n"), std::runtime_error);
    EXPECT_THROW(io::readEdgeListString("e -1 0\n"), std::runtime_error);
}

TEST(GraphIo, StreamRoundTrip)
{
    Rng rng(5);
    Graph g = gen::connectedGnp(9, 0.4, rng);
    std::ostringstream out;
    io::writeEdgeList(out, g);
    Graph back = io::readEdgeListString(out.str());
    EXPECT_EQ(back.numNodes(), g.numNodes());
    EXPECT_EQ(back.numEdges(), g.numEdges());
    for (const Edge &e : g.edges())
        EXPECT_TRUE(back.hasEdge(e.u, e.v));
}

TEST(GraphIo, FileRoundTrip)
{
    Rng rng(6);
    Graph g = gen::connectedGnp(7, 0.5, rng);
    std::string path = "/tmp/redqaoa_io_test.graph";
    io::saveGraph(path, g);
    Graph back = io::loadGraph(path);
    EXPECT_EQ(back.numNodes(), g.numNodes());
    EXPECT_EQ(back.numEdges(), g.numEdges());
}

TEST(GraphIo, MissingFileThrows)
{
    EXPECT_THROW(io::loadGraph("/nonexistent/nope.graph"),
                 std::runtime_error);
}

} // namespace
} // namespace redqaoa
